//! Sparse compressed-sparse-column matrices and LU factorization.
//!
//! The MNA matrices this workspace stamps are overwhelmingly sparse — a
//! ladder node row touches at most four neighbours, a branch row couples two
//! nodes and (through mutual inductance) a handful of other branches — yet
//! [`crate::DenseMatrix`] pays O(n²) storage and O(n³) factor cost
//! regardless. This module provides the sparse counterpart used by the
//! transient fast path on large circuits:
//!
//! * [`CscMatrix`] — compressed-sparse-column storage assembled from
//!   (row, column, value) triplets, with duplicate entries summed exactly as
//!   repeated `add_at` stamps would be.
//! * [`SparseLu`] — a left-looking (Gilbert–Peierls) LU factorization with
//!   partial pivoting, preceded by a greedy minimum-degree column ordering on
//!   the symmetrized pattern (the Markowitz-style fill reduction for
//!   unsymmetric MNA stamps). The symbolic structure — elimination order,
//!   pivot sequence and the L/U patterns — is computed once by
//!   [`SparseLu::factor`] and reused: [`SparseLu::solve_into`] performs the
//!   allocation-free triangular solves of the factor-once transient kernel,
//!   and [`SparseLu::refactor`] replays the numeric pass on new values with
//!   the same pattern (a repeated run of an unchanged topology) without
//!   re-running the ordering or the reachability search.
//!
//! Pivot health is observable through [`SparseLu::pivot_extremes`], mirroring
//! [`crate::LuFactors::pivot_extremes`], so callers can gate the sparse path
//! the same way the dense kernels gate the Sherman–Morrison–Woodbury update
//! and degrade to dense LU on near-singular stamps.

use crate::matrix::SolveError;

/// Pivots smaller than this in absolute value are treated as singular — the
/// same floor the dense factorization uses.
const PIVOT_FLOOR: f64 = 1e-300;

/// Relative threshold for preferring the diagonal entry over the largest
/// off-diagonal candidate during partial pivoting. Keeping the pivot on the
/// diagonal when it is within this factor of the maximum preserves the
/// fill-reducing column ordering; genuinely small diagonals (a voltage-source
/// branch row has a structural zero there) still pivot away.
const DIAGONAL_PREFERENCE: f64 = 0.1;

/// A sentinel for "row not yet chosen as a pivot".
const UNPIVOTED: usize = usize::MAX;

/// A square sparse matrix in compressed-sparse-column form.
///
/// Built from stamping triplets; duplicate (row, column) entries are summed,
/// so the assembly semantics match repeated dense `add_at` calls.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CscMatrix {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Assembles an `n x n` matrix from (row, column, value) triplets,
    /// summing duplicates. Row indices within each column end up sorted.
    ///
    /// # Panics
    /// Panics if any triplet index is out of bounds.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> CscMatrix {
        let mut count = vec![0usize; n + 1];
        for &(r, c, _) in triplets {
            assert!(
                r < n && c < n,
                "triplet ({r}, {c}) out of bounds for n = {n}"
            );
            count[c + 1] += 1;
        }
        for k in 0..n {
            count[k + 1] += count[k];
        }
        // Scatter triplets into per-column runs, then sort and merge each run.
        let mut cursor = count.clone();
        let mut rows = vec![0usize; triplets.len()];
        let mut vals = vec![0.0; triplets.len()];
        for &(r, c, v) in triplets {
            let p = cursor[c];
            rows[p] = r;
            vals[p] = v;
            cursor[c] += 1;
        }
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        col_ptr.push(0);
        for c in 0..n {
            scratch.clear();
            scratch.extend(
                rows[count[c]..count[c + 1]]
                    .iter()
                    .copied()
                    .zip(vals[count[c]..count[c + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(r, _)| r);
            for &(r, v) in scratch.iter() {
                if row_idx.len() > col_ptr[c] && *row_idx.last().unwrap() == r {
                    *values.last_mut().unwrap() += v;
                } else {
                    row_idx.push(r);
                    values.push(v);
                }
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix {
            n,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored (structural) nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Entry at (`row`, `col`); zero when not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let range = self.col_ptr[col]..self.col_ptr[col + 1];
        match self.row_idx[range.clone()].binary_search(&row) {
            Ok(p) => self.values[range.start + p],
            Err(_) => 0.0,
        }
    }

    /// Largest absolute entry (0 for an empty matrix) — the scale reference
    /// for pivot-health checks.
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Whether `other` has the identical sparsity pattern (dimension, column
    /// pointers and row indices). When true, a stored factorization of `self`
    /// can be numerically refreshed for `other` via [`SparseLu::refactor`].
    pub fn same_pattern(&self, other: &CscMatrix) -> bool {
        self.n == other.n && self.col_ptr == other.col_ptr && self.row_idx == other.row_idx
    }

    /// Scales every stored value in place, leaving the sparsity pattern
    /// untouched. A same-pattern companion to rebuilding the matrix from
    /// scaled triplets, for sweeps that vary one global factor.
    pub fn scale_values(&mut self, factor: f64) {
        for v in self.values.iter_mut() {
            *v *= factor;
        }
    }

    /// Maps each triplet of `triplets` to the storage slot it landed in when
    /// this matrix was assembled, so the values can later be refreshed in
    /// place via [`CscMatrix::revalue_from_triplets`] without re-running the
    /// assembly (count/scatter/sort) for every variation sample.
    ///
    /// # Panics
    /// Panics if a triplet addresses a position that is not part of this
    /// matrix's sparsity pattern.
    pub fn triplet_map(&self, triplets: &[(usize, usize, f64)]) -> Vec<usize> {
        triplets
            .iter()
            .map(|&(r, c, _)| {
                let range = self.col_ptr[c]..self.col_ptr[c + 1];
                let off = self.row_idx[range.clone()]
                    .binary_search(&r)
                    .unwrap_or_else(|_| panic!("triplet ({r}, {c}) is not in the matrix pattern"));
                range.start + off
            })
            .collect()
    }

    /// Replaces the stored values from a triplet list with the **same
    /// pattern** as the one this matrix was assembled from, using a slot map
    /// previously built by [`CscMatrix::triplet_map`]. Duplicate triplets
    /// accumulate, matching [`CscMatrix::from_triplets`] semantics; the
    /// sparsity pattern (and therefore [`CscMatrix::same_pattern`] /
    /// [`SparseLu::refactor`] eligibility) is preserved exactly.
    ///
    /// # Panics
    /// Panics if `map.len() != triplets.len()` or a slot is out of bounds.
    pub fn revalue_from_triplets(&mut self, map: &[usize], triplets: &[(usize, usize, f64)]) {
        assert_eq!(
            map.len(),
            triplets.len(),
            "slot map and triplet list must pair up"
        );
        for v in self.values.iter_mut() {
            *v = 0.0;
        }
        for (&slot, &(_, _, v)) in map.iter().zip(triplets) {
            self.values[slot] += v;
        }
    }

    /// Dense matrix-vector product `y = A x` (test and cross-check helper).
    ///
    /// # Panics
    /// Panics if `x.len() != self.dim()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for (c, &xc) in x.iter().enumerate() {
            if xc == 0.0 {
                continue;
            }
            for p in self.col_ptr[c]..self.col_ptr[c + 1] {
                y[self.row_idx[p]] += self.values[p] * xc;
            }
        }
        y
    }
}

/// A sparse LU factorization `P A Q = L U` with partial pivoting (`P`) and a
/// fill-reducing minimum-degree column ordering (`Q`).
///
/// [`SparseLu::factor`] performs the symbolic analysis (ordering, per-column
/// reachability, pivot selection) and the numeric factorization together;
/// the resulting structure is retained so that [`SparseLu::solve_into`] is
/// allocation-free and [`SparseLu::refactor`] can refresh the numeric values
/// for a same-pattern matrix without repeating the symbolic work.
#[derive(Debug, Clone, Default)]
pub struct SparseLu {
    n: usize,
    /// Fill-reducing column order: `col_order[k]` is the original column
    /// eliminated at step `k`.
    col_order: Vec<usize>,
    /// Row permutation from partial pivoting: `pinv[original_row]` is the
    /// pivotal position of that row.
    pinv: Vec<usize>,
    /// `pivot_row[k]` is the original row chosen as pivot at step `k`.
    pivot_row: Vec<usize>,
    // L stored by pivotal column with ORIGINAL row indices, strictly below
    // the (implicit unit) diagonal.
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    // U stored by pivotal column with PIVOTAL row indices sorted ascending;
    // the diagonal entry is last in each column.
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    // `u_rows_mapped[p] == pivot_row[u_rows[p]]`: U's pivotal row indices
    // translated to original row coordinates, so the batched backward solve
    // can run in place on the forward-solve panel without gathering into
    // pivotal order first. Rebuilt by `factor`, still valid after
    // `refactor` (which reuses the pattern and pivot sequence).
    u_rows_mapped: Vec<usize>,
    // `l_rows_mapped[p] == pinv[l_rows[p]]`: L's original row indices
    // translated to pivotal coordinates for the prepivoted panel solve.
    // Every mapped index is strictly greater than its column's step (those
    // rows are not yet pivoted when the column is formed), which is what
    // lets the forward solve split the panel instead of staging lanes.
    l_rows_mapped: Vec<usize>,
    // Reusable solve/factor scratch.
    work: Vec<f64>,
    // Panel scratch for the batched solve (n * k working panel plus one
    // k-wide lane buffer); grown on demand, reused across calls.
    work_many: Vec<f64>,
    lane_scratch: Vec<f64>,
}

impl SparseLu {
    /// Creates an empty factorization; populated by [`SparseLu::factor`].
    pub fn empty() -> SparseLu {
        SparseLu::default()
    }

    /// Dimension of the factored matrix (0 while empty).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Structural nonzeros of the computed factors (L strictly-lower plus U
    /// including diagonals) — the per-solve work measure.
    pub fn factor_nnz(&self) -> usize {
        self.l_rows.len() + self.u_rows.len()
    }

    /// Factorizes `a`, replacing any previous contents and reusing the
    /// allocations of this factorization object.
    ///
    /// # Errors
    /// Returns [`SolveError::Singular`] when no acceptable pivot exists for
    /// some column (reported as the *original* column index).
    pub fn factor(&mut self, a: &CscMatrix) -> Result<(), SolveError> {
        let n = a.dim();
        self.n = n;
        self.col_order = min_degree_order(a);
        self.pinv.clear();
        self.pinv.resize(n, UNPIVOTED);
        self.pivot_row.clear();
        self.pivot_row.resize(n, UNPIVOTED);
        self.l_colptr.clear();
        self.l_colptr.push(0);
        self.l_rows.clear();
        self.l_vals.clear();
        self.u_colptr.clear();
        self.u_colptr.push(0);
        self.u_rows.clear();
        self.u_vals.clear();
        self.work.clear();
        self.work.resize(n, 0.0);

        // flag[i] == k marks original row i as visited while processing
        // column k; topo collects the reach in DFS postorder.
        let mut flag = vec![UNPIVOTED; n];
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut stack: Vec<(usize, usize)> = Vec::with_capacity(n);
        let mut u_entries: Vec<(usize, f64)> = Vec::new();

        for k in 0..n {
            let col = self.col_order[k];
            // Symbolic step: reach of A(:, col) through the graph of L.
            topo.clear();
            for p in a.col_ptr[col]..a.col_ptr[col + 1] {
                let start = a.row_idx[p];
                if flag[start] == k {
                    continue;
                }
                flag[start] = k;
                stack.push((start, 0));
                while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
                    let j = self.pinv[node];
                    let (lo, hi) = if j == UNPIVOTED {
                        (0, 0)
                    } else {
                        (self.l_colptr[j], self.l_colptr[j + 1])
                    };
                    let mut advanced = false;
                    while lo + *cursor < hi {
                        let child = self.l_rows[lo + *cursor];
                        *cursor += 1;
                        if flag[child] != k {
                            flag[child] = k;
                            stack.push((child, 0));
                            advanced = true;
                            break;
                        }
                    }
                    if !advanced {
                        stack.pop();
                        topo.push(node);
                    }
                }
            }
            // Numeric step: scatter A(:, col) and eliminate in topological
            // (reverse-postorder) order.
            for p in a.col_ptr[col]..a.col_ptr[col + 1] {
                self.work[a.row_idx[p]] = a.values[p];
            }
            for &i in topo.iter().rev() {
                let j = self.pinv[i];
                if j == UNPIVOTED {
                    continue;
                }
                let xi = self.work[i];
                if xi != 0.0 {
                    for p in self.l_colptr[j]..self.l_colptr[j + 1] {
                        self.work[self.l_rows[p]] -= self.l_vals[p] * xi;
                    }
                }
            }
            // Pivot selection: largest unpivoted magnitude, with a relative
            // preference for the structural diagonal to limit fill.
            let mut best = UNPIVOTED;
            let mut best_abs = 0.0;
            for &i in topo.iter() {
                if self.pinv[i] == UNPIVOTED {
                    let v = self.work[i].abs();
                    if v > best_abs {
                        best_abs = v;
                        best = i;
                    }
                }
            }
            if self.pinv[col] == UNPIVOTED
                && flag[col] == k
                && self.work[col].abs() >= DIAGONAL_PREFERENCE * best_abs
            {
                best = col;
                best_abs = self.work[col].abs();
            }
            if best == UNPIVOTED || best_abs < PIVOT_FLOOR {
                // Leave the scratch clean before bailing out.
                for &i in topo.iter() {
                    self.work[i] = 0.0;
                }
                return Err(SolveError::Singular { column: col });
            }
            let pivot = self.work[best];
            self.pinv[best] = k;
            self.pivot_row[k] = best;

            // Split the column: pivoted rows feed U, the rest feed L.
            u_entries.clear();
            for &i in topo.iter() {
                let j = self.pinv[i];
                if i == best {
                    continue;
                }
                if j != UNPIVOTED && j < k {
                    u_entries.push((j, self.work[i]));
                } else {
                    let v = self.work[i] / pivot;
                    if v != 0.0 {
                        self.l_rows.push(i);
                        self.l_vals.push(v);
                    }
                }
                self.work[i] = 0.0;
            }
            self.work[best] = 0.0;
            self.l_colptr.push(self.l_rows.len());
            u_entries.sort_unstable_by_key(|&(r, _)| r);
            for &(r, v) in u_entries.iter() {
                self.u_rows.push(r);
                self.u_vals.push(v);
            }
            self.u_rows.push(k);
            self.u_vals.push(pivot);
            self.u_colptr.push(self.u_rows.len());
        }
        self.u_rows_mapped.clear();
        self.u_rows_mapped
            .extend(self.u_rows.iter().map(|&j| self.pivot_row[j]));
        self.l_rows_mapped.clear();
        self.l_rows_mapped
            .extend(self.l_rows.iter().map(|&i| self.pinv[i]));
        Ok(())
    }

    /// Refreshes the numeric values for a matrix with the **same sparsity
    /// pattern** as the one last passed to [`SparseLu::factor`], replaying
    /// the elimination with the stored ordering, pivot sequence and fill
    /// patterns — no symbolic work.
    ///
    /// The caller is responsible for the pattern actually matching (see
    /// [`CscMatrix::same_pattern`]); reusing the old pivot sequence on very
    /// different values can degrade accuracy, which
    /// [`SparseLu::pivot_extremes`] makes observable.
    ///
    /// # Errors
    /// Returns [`SolveError::Singular`] when a reused pivot position becomes
    /// numerically zero, and [`SolveError::DimensionMismatch`] when called
    /// before a successful [`SparseLu::factor`] or with a different
    /// dimension.
    pub fn refactor(&mut self, a: &CscMatrix) -> Result<(), SolveError> {
        if self.n == 0 || a.dim() != self.n || self.pivot_row.len() != self.n {
            return Err(SolveError::DimensionMismatch);
        }
        let n = self.n;
        self.work.clear();
        self.work.resize(n, 0.0);
        for k in 0..n {
            let col = self.col_order[k];
            for p in a.col_ptr[col]..a.col_ptr[col + 1] {
                self.work[a.row_idx[p]] = a.values[p];
            }
            // Left-looking update in ascending pivotal order (topologically
            // valid for the stored pattern), refreshing U as we go.
            let (u_lo, u_hi) = (self.u_colptr[k], self.u_colptr[k + 1]);
            for p in u_lo..u_hi - 1 {
                let j = self.u_rows[p];
                let orig = self.pivot_row[j];
                let xj = self.work[orig];
                self.u_vals[p] = xj;
                self.work[orig] = 0.0;
                if xj != 0.0 {
                    for q in self.l_colptr[j]..self.l_colptr[j + 1] {
                        self.work[self.l_rows[q]] -= self.l_vals[q] * xj;
                    }
                }
            }
            let best = self.pivot_row[k];
            let pivot = self.work[best];
            self.work[best] = 0.0;
            if pivot.abs() < PIVOT_FLOOR {
                for p in self.l_colptr[k]..self.l_colptr[k + 1] {
                    self.work[self.l_rows[p]] = 0.0;
                }
                return Err(SolveError::Singular { column: col });
            }
            self.u_vals[u_hi - 1] = pivot;
            for p in self.l_colptr[k]..self.l_colptr[k + 1] {
                let i = self.l_rows[p];
                self.l_vals[p] = self.work[i] / pivot;
                self.work[i] = 0.0;
            }
        }
        Ok(())
    }

    /// Solves `A x = b` using the stored factors; allocation-free.
    ///
    /// # Panics
    /// Panics if `b` or `x` do not match the factored dimension, or if called
    /// before a successful [`SparseLu::factor`].
    pub fn solve_into(&mut self, b: &[f64], x: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs dimension mismatch");
        assert_eq!(x.len(), n, "solution dimension mismatch");
        // Forward solve L y = P b, working in original row coordinates.
        self.work.copy_from_slice(b);
        for k in 0..n {
            let yk = self.work[self.pivot_row[k]];
            if yk != 0.0 {
                for p in self.l_colptr[k]..self.l_colptr[k + 1] {
                    self.work[self.l_rows[p]] -= self.l_vals[p] * yk;
                }
            }
        }
        // Gather into pivotal order, then backward solve U z = y.
        for (xk, &row) in x.iter_mut().zip(&self.pivot_row) {
            *xk = self.work[row];
        }
        for k in (0..n).rev() {
            let (lo, hi) = (self.u_colptr[k], self.u_colptr[k + 1]);
            let zk = x[k] / self.u_vals[hi - 1];
            x[k] = zk;
            if zk != 0.0 {
                for p in lo..hi - 1 {
                    x[self.u_rows[p]] -= self.u_vals[p] * zk;
                }
            }
        }
        // Undo the column permutation: solution[q[k]] = z[k].
        for (&xk, &col) in x.iter().zip(&self.col_order) {
            self.work[col] = xk;
        }
        x.copy_from_slice(&self.work);
        self.work.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Solves `A X = B` for a panel of `k` right-hand sides at once using
    /// the stored factors — the batched counterpart of
    /// [`SparseLu::solve_into`].
    ///
    /// The panel layout matches [`crate::LuFactors::solve_many_into`]: an
    /// `n x k` matrix whose columns are the individual right-hand sides,
    /// stored row-major (entry `(i, j)` at index `i * k + j`), so the `k`
    /// lane values of every unknown are contiguous and each factor entry is
    /// loaded once per panel instead of once per sample.
    ///
    /// Per lane, the traversal order of the factor entries is the same as
    /// [`SparseLu::solve_into`], so each column agrees with an independent
    /// single-RHS solve to within sign-of-zero differences.
    ///
    /// # Panics
    /// Panics if `b.len()` or `x.len()` is not `n * k`, or if called before
    /// a successful [`SparseLu::factor`].
    pub fn solve_many_into(&mut self, b: &[f64], x: &mut [f64], k: usize) {
        let n = self.n;
        assert_eq!(b.len(), n * k, "rhs panel must be n * k");
        assert_eq!(x.len(), n * k, "solution panel must be n * k");
        if k == 0 {
            return;
        }
        let mut w = std::mem::take(&mut self.work_many);
        w.resize(n * k, 0.0);
        w.copy_from_slice(b);
        self.solve_panel_in_place(&mut w, x, k);
        self.work_many = w;
    }

    /// Like [`SparseLu::solve_many_into`], but consumes the right-hand-side
    /// panel as the forward/backward working buffer (its contents are
    /// destroyed). This skips the internal panel copy — worthwhile in tight
    /// time-stepping loops that rebuild the RHS panel every step anyway.
    ///
    /// # Panics
    /// Panics if `b.len()` or `x.len()` is not `n * k`, or if called before
    /// a successful [`SparseLu::factor`].
    pub fn solve_many_in_place(&mut self, b: &mut [f64], x: &mut [f64], k: usize) {
        let n = self.n;
        assert_eq!(b.len(), n * k, "rhs panel must be n * k");
        assert_eq!(x.len(), n * k, "solution panel must be n * k");
        if k == 0 {
            return;
        }
        self.solve_panel_in_place(b, x, k);
    }

    /// Row permutation of the stored factorization: `row_permutation()[i]`
    /// is the pivotal step at which original row `i` was eliminated. A
    /// caller that assembles right-hand sides through this map can use
    /// [`SparseLu::solve_many_prepivoted`], the fastest panel-solve path.
    /// Empty before a successful [`SparseLu::factor`]; stable across
    /// [`SparseLu::refactor`].
    pub fn row_permutation(&self) -> &[usize] {
        &self.pinv
    }

    /// Panel solve for a right-hand side already assembled in *pivotal* row
    /// coordinates: `b[step * k + lane]` must hold the RHS entry of the
    /// original row `pivot_row[step]` (i.e. rows permuted through
    /// [`SparseLu::row_permutation`]). `b` is consumed as the working
    /// buffer; `x` receives the solution in original (unpermuted) column
    /// coordinates, like every other solve.
    ///
    /// This is the cheapest batched path: the pivot lane of each step is a
    /// contiguous read (no staging copy), and because forward updates only
    /// ever touch later pivotal rows and backward updates earlier ones, the
    /// panel is split instead of aliased. Pivot divisions are applied as a
    /// precomputed reciprocal multiply, so results can differ from
    /// [`SparseLu::solve_into`] by about one ulp per entry (far below the
    /// factorization error); every other operation matches exactly.
    ///
    /// # Panics
    /// Panics if `b.len()` or `x.len()` is not `n * k`, or if called before
    /// a successful [`SparseLu::factor`].
    pub fn solve_many_prepivoted(&mut self, b: &mut [f64], x: &mut [f64], k: usize) {
        let n = self.n;
        assert_eq!(b.len(), n * k, "rhs panel must be n * k");
        assert_eq!(x.len(), n * k, "solution panel must be n * k");
        if k == 0 {
            return;
        }
        // Forward solve L Y = B (B already row-permuted): column `step`'s
        // updates land on strictly later pivotal rows.
        for step in 0..n {
            let (lo, hi) = (self.l_colptr[step], self.l_colptr[step + 1]);
            if lo == hi {
                continue;
            }
            let (done, rest) = b.split_at_mut((step + 1) * k);
            let lane = &done[step * k..];
            if lane.iter().all(|&v| v == 0.0) {
                continue;
            }
            for p in lo..hi {
                let row = (self.l_rows_mapped[p] - step - 1) * k;
                let lv = self.l_vals[p];
                for (wl, &y) in rest[row..row + k].iter_mut().zip(lane.iter()) {
                    *wl -= lv * y;
                }
            }
        }
        // Backward solve U Z = Y: each finished lane is divided straight
        // into its final slot `x[col_order[step]]` and the updates land on
        // strictly earlier pivotal rows.
        for step in (0..n).rev() {
            let (lo, hi) = (self.u_colptr[step], self.u_colptr[step + 1]);
            // One scalar division per step instead of one vector division
            // per lane; the ≤1-ulp-per-entry difference against
            // [`SparseLu::solve_into`] is far below factorization error.
            let r = 1.0 / self.u_vals[hi - 1];
            let dst = self.col_order[step] * k;
            let (earlier, cur) = b.split_at_mut(step * k);
            let mut all_zero = true;
            for (xl, &yl) in x[dst..dst + k].iter_mut().zip(cur[..k].iter()) {
                let z = yl * r;
                all_zero &= z == 0.0;
                *xl = z;
            }
            if all_zero || lo + 1 == hi {
                continue;
            }
            let z = &x[dst..dst + k];
            for p in lo..hi - 1 {
                let row = self.u_rows[p] * k;
                let uv = self.u_vals[p];
                for (wl, &zl) in earlier[row..row + k].iter_mut().zip(z.iter()) {
                    *wl -= uv * zl;
                }
            }
        }
    }

    /// Shared panel-solve core: forward and backward substitution run in
    /// place on `w` in *original* row coordinates (no gather into pivotal
    /// order), and each pivotal solution lane is written straight to its
    /// final slot `x[col_order[step]]` during the backward pass. The
    /// per-lane arithmetic order matches [`SparseLu::solve_into`] exactly,
    /// so results stay bit-compatible with independent single-RHS solves.
    fn solve_panel_in_place(&mut self, w: &mut [f64], x: &mut [f64], k: usize) {
        let n = self.n;
        let mut lane = std::mem::take(&mut self.lane_scratch);
        lane.clear();
        lane.resize(k, 0.0);

        // Forward solve L Y = P B. The pivot lane is staged through a
        // k-wide scratch because its row may interleave with the update
        // targets in `w`; columns with no L entries skip even that.
        for step in 0..n {
            let (lo, hi) = (self.l_colptr[step], self.l_colptr[step + 1]);
            if lo == hi {
                continue;
            }
            let src = self.pivot_row[step] * k;
            lane.copy_from_slice(&w[src..src + k]);
            if lane.iter().all(|&v| v == 0.0) {
                continue;
            }
            for p in lo..hi {
                let row = self.l_rows[p] * k;
                let lv = self.l_vals[p];
                for (wl, &y) in w[row..row + k].iter_mut().zip(lane.iter()) {
                    *wl -= lv * y;
                }
            }
        }
        // Backward solve U Z = Y, still in original row coordinates: the
        // running value of pivotal unknown `j` lives at `w[pivot_row[j]]`,
        // so U's updates land through `u_rows_mapped`, and the finished
        // lane for pivotal step `step` is the solution of original column
        // `col_order[step]` — divided straight into its final slot in `x`
        // and used from there as the update source (`w` and `x` are
        // disjoint buffers, so no staging copy is needed).
        for step in (0..n).rev() {
            let (lo, hi) = (self.u_colptr[step], self.u_colptr[step + 1]);
            let d = self.u_vals[hi - 1];
            let src = self.pivot_row[step] * k;
            let dst = self.col_order[step] * k;
            let mut all_zero = true;
            for (xl, &yl) in x[dst..dst + k].iter_mut().zip(w[src..src + k].iter()) {
                let z = yl / d;
                all_zero &= z == 0.0;
                *xl = z;
            }
            if all_zero || lo + 1 == hi {
                continue;
            }
            let z = &x[dst..dst + k];
            for p in lo..hi - 1 {
                let row = self.u_rows_mapped[p] * k;
                let uv = self.u_vals[p];
                for (wl, &zl) in w[row..row + k].iter_mut().zip(z.iter()) {
                    *wl -= uv * zl;
                }
            }
        }

        self.lane_scratch = lane;
    }

    /// Smallest and largest absolute pivot of the stored factorization —
    /// the sparse counterpart of [`crate::LuFactors::pivot_extremes`], used
    /// to gate the sparse kernel and fall back to dense LU on near-singular
    /// stamps. Returns `(0.0, 0.0)` while empty.
    pub fn pivot_extremes(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for k in 0..self.n {
            let d = self.u_vals[self.u_colptr[k + 1] - 1].abs();
            min = min.min(d);
            max = max.max(d);
        }
        if self.n == 0 {
            (0.0, 0.0)
        } else {
            (min, max)
        }
    }
}

/// Greedy minimum-degree ordering on the symmetrized pattern of `a`
/// (Markowitz-style fill reduction for unsymmetric stamps): repeatedly
/// eliminate the node of smallest current degree, connecting its neighbours
/// into a clique. Exact elimination-graph updates — quadratic in the worst
/// case but linear-ish on the bounded-degree node/branch graphs MNA produces.
fn min_degree_order(a: &CscMatrix) -> Vec<usize> {
    let n = a.dim();
    let mut adj: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
    for c in 0..n {
        for p in a.col_ptr[c]..a.col_ptr[c + 1] {
            let r = a.row_idx[p];
            if r != c {
                adj[r].insert(c);
                adj[c].insert(r);
            }
        }
    }
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut neighbours: Vec<usize> = Vec::new();
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !eliminated[v])
            .min_by_key(|&v| adj[v].len())
            .expect("one live node remains per step");
        eliminated[v] = true;
        order.push(v);
        neighbours.clear();
        neighbours.extend(adj[v].iter().copied());
        for &w in neighbours.iter() {
            adj[w].remove(&v);
        }
        for (i, &w1) in neighbours.iter().enumerate() {
            for &w2 in neighbours.iter().skip(i + 1) {
                adj[w1].insert(w2);
                adj[w2].insert(w1);
            }
        }
        adj[v].clear();
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseMatrix;

    /// A pseudo-random sparse system with a dense-solver cross-check.
    fn random_system(
        n: usize,
        extra_per_col: usize,
        seed: u64,
    ) -> (Vec<(usize, usize, f64)>, CscMatrix) {
        let mut unit = crate::splitmix_stream(seed);
        let mut triplets = Vec::new();
        for c in 0..n {
            // Guaranteed nonzero diagonal keeps the dense reference factorable.
            triplets.push((c, c, 2.0 + unit()));
            for _ in 0..extra_per_col {
                let r = (unit() * n as f64) as usize % n;
                triplets.push((r, c, unit() - 0.5));
            }
        }
        let a = CscMatrix::from_triplets(n, &triplets);
        (triplets, a)
    }

    fn dense_from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(n, n);
        for &(r, c, v) in triplets {
            m.add_at(r, c, v);
        }
        m
    }

    #[test]
    fn assembly_sums_duplicates_and_sorts_rows() {
        let a = CscMatrix::from_triplets(
            3,
            &[
                (2, 0, 1.0),
                (0, 0, 4.0),
                (2, 0, 0.5),
                (1, 2, -2.0),
                (1, 1, 3.0),
            ],
        );
        assert_eq!(a.dim(), 3);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(2, 0), 1.5);
        assert_eq!(a.get(1, 1), 3.0);
        assert_eq!(a.get(1, 2), -2.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert!((a.max_abs() - 4.0).abs() < 1e-15);
    }

    #[test]
    fn solve_matches_dense_on_random_systems() {
        for (n, extra, seed) in [(5, 2, 1u64), (40, 3, 2), (120, 4, 3)] {
            let (triplets, a) = random_system(n, extra, seed);
            let dense = dense_from_triplets(n, &triplets);
            let b: Vec<f64> = (0..n).map(|k| (k as f64 * 0.37).sin()).collect();
            let expected = dense.solve(&b).unwrap();
            let mut lu = SparseLu::empty();
            lu.factor(&a).unwrap();
            let mut x = vec![0.0; n];
            lu.solve_into(&b, &mut x);
            for k in 0..n {
                assert!(
                    (x[k] - expected[k]).abs() < 1e-9 * expected[k].abs().max(1.0),
                    "n={n} seed={seed} x[{k}] = {} vs {}",
                    x[k],
                    expected[k]
                );
            }
            // Residual check straight against the assembled matrix.
            let ax = a.mul_vec(&x);
            for k in 0..n {
                assert!((ax[k] - b[k]).abs() < 1e-9, "residual at {k}");
            }
        }
    }

    #[test]
    fn handles_structural_zero_diagonals_like_mna_branch_rows() {
        // A voltage-source-style block: node row [g, 1; 1, 0] — the branch
        // row has a structural zero diagonal, so factorization must pivot.
        let triplets = [
            (0, 0, 1e-3),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (2, 2, 0.5),
            (2, 1, 0.2),
            (1, 2, -0.4),
        ];
        let a = CscMatrix::from_triplets(3, &triplets);
        let dense = dense_from_triplets(3, &triplets);
        let b = [1.0, -2.0, 0.5];
        let expected = dense.solve(&b).unwrap();
        let mut lu = SparseLu::empty();
        lu.factor(&a).unwrap();
        let mut x = vec![0.0; 3];
        lu.solve_into(&b, &mut x);
        for k in 0..3 {
            assert!((x[k] - expected[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn refactor_reuses_pattern_and_matches_full_factor() {
        let (triplets, a) = random_system(60, 3, 7);
        let mut lu = SparseLu::empty();
        lu.factor(&a).unwrap();
        // Same pattern, scaled values.
        let scaled: Vec<(usize, usize, f64)> =
            triplets.iter().map(|&(r, c, v)| (r, c, 1.7 * v)).collect();
        let a2 = CscMatrix::from_triplets(60, &scaled);
        assert!(a.same_pattern(&a2));
        lu.refactor(&a2).unwrap();
        let b: Vec<f64> = (0..60).map(|k| (k as f64 * 0.11).cos()).collect();
        let mut x = vec![0.0; 60];
        lu.solve_into(&b, &mut x);
        let ax = a2.mul_vec(&x);
        for k in 0..60 {
            assert!(
                (ax[k] - b[k]).abs() < 1e-9,
                "residual at {k}: {}",
                ax[k] - b[k]
            );
        }
    }

    #[test]
    fn refactor_before_factor_is_a_dimension_error() {
        let a = CscMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let mut lu = SparseLu::empty();
        assert_eq!(lu.refactor(&a), Err(SolveError::DimensionMismatch));
    }

    #[test]
    fn singular_matrix_is_reported() {
        // Column 1 is structurally empty.
        let a = CscMatrix::from_triplets(3, &[(0, 0, 1.0), (2, 2, 1.0), (0, 2, 0.5)]);
        let mut lu = SparseLu::empty();
        assert!(matches!(lu.factor(&a), Err(SolveError::Singular { .. })));
        // Numerically singular: two proportional columns.
        let b = CscMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 0, 2.0), (0, 1, 2.0), (1, 1, 4.0)]);
        assert!(matches!(lu.factor(&b), Err(SolveError::Singular { .. })));
    }

    #[test]
    fn pivot_extremes_track_the_scale() {
        let a = CscMatrix::from_triplets(3, &[(0, 0, 100.0), (1, 1, 1.0), (2, 2, 1e-6)]);
        let mut lu = SparseLu::empty();
        lu.factor(&a).unwrap();
        let (min, max) = lu.pivot_extremes();
        assert!((min - 1e-6).abs() < 1e-18);
        assert!((max - 100.0).abs() < 1e-9);
        assert_eq!(SparseLu::empty().pivot_extremes(), (0.0, 0.0));
    }

    #[test]
    fn min_degree_keeps_tridiagonal_fill_free() {
        // A 1-D ladder (tridiagonal) has a perfect elimination order; the
        // factor nonzeros must stay within the band (no fill blow-up).
        let n = 200;
        let mut triplets = Vec::new();
        for k in 0..n {
            triplets.push((k, k, 4.0));
            if k + 1 < n {
                triplets.push((k, k + 1, -1.0));
                triplets.push((k + 1, k, -1.0));
            }
        }
        let a = CscMatrix::from_triplets(n, &triplets);
        let mut lu = SparseLu::empty();
        lu.factor(&a).unwrap();
        // Tridiagonal LU has at most n-1 off-diagonal entries per factor.
        assert!(
            lu.factor_nnz() <= 3 * n,
            "fill blow-up: {} stored factor entries for a tridiagonal system",
            lu.factor_nnz()
        );
        let b: Vec<f64> = (0..n).map(|k| if k % 7 == 0 { 1.0 } else { 0.0 }).collect();
        let mut x = vec![0.0; n];
        lu.solve_into(&b, &mut x);
        let ax = a.mul_vec(&x);
        for k in 0..n {
            assert!((ax[k] - b[k]).abs() < 1e-10);
        }
    }

    #[test]
    fn scale_values_matches_scaled_assembly() {
        let (triplets, mut a) = random_system(40, 3, 21);
        let scaled: Vec<(usize, usize, f64)> =
            triplets.iter().map(|&(r, c, v)| (r, c, 0.35 * v)).collect();
        let fresh = CscMatrix::from_triplets(40, &scaled);
        a.scale_values(0.35);
        assert!(a.same_pattern(&fresh));
        for c in 0..40 {
            for r in 0..40 {
                assert!(
                    (a.get(r, c) - fresh.get(r, c)).abs() <= 1e-12 * fresh.get(r, c).abs(),
                    "({r}, {c})"
                );
            }
        }
    }

    #[test]
    fn revalue_from_triplets_matches_fresh_assembly() {
        let (triplets, mut a) = random_system(50, 3, 33);
        let map = a.triplet_map(&triplets);
        // New values on the identical pattern — what a variation sample does.
        let revalued: Vec<(usize, usize, f64)> = triplets
            .iter()
            .enumerate()
            .map(|(i, &(r, c, v))| (r, c, v * (1.0 + 0.01 * i as f64)))
            .collect();
        let fresh = CscMatrix::from_triplets(50, &revalued);
        a.revalue_from_triplets(&map, &revalued);
        assert!(a.same_pattern(&fresh));
        for c in 0..50 {
            for r in 0..50 {
                let want = fresh.get(r, c);
                assert!(
                    (a.get(r, c) - want).abs() <= 1e-12 * want.abs().max(1.0),
                    "({r}, {c}): {} vs {want}",
                    a.get(r, c)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not in the matrix pattern")]
    fn triplet_map_rejects_pattern_mismatch() {
        let a = CscMatrix::from_triplets(3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let _ = a.triplet_map(&[(0, 1, 5.0)]);
    }

    #[test]
    fn solve_many_into_matches_independent_solves() {
        for (n, extra, k, seed) in [
            (5usize, 2usize, 3usize, 41u64),
            (40, 3, 8, 42),
            (120, 4, 16, 43),
        ] {
            let (_, a) = random_system(n, extra, seed);
            let mut lu = SparseLu::empty();
            lu.factor(&a).unwrap();

            let mut unit = crate::splitmix_stream(seed ^ 0xdead_beef);
            // Interleaved panel: component i of RHS j at b[i * k + j].
            let b: Vec<f64> = (0..n * k).map(|_| unit() - 0.5).collect();
            let mut x = vec![0.0; n * k];
            lu.solve_many_into(&b, &mut x, k);

            let mut single_b = vec![0.0; n];
            let mut single_x = vec![0.0; n];
            for lane in 0..k {
                for i in 0..n {
                    single_b[i] = b[i * k + lane];
                }
                lu.solve_into(&single_b, &mut single_x);
                for i in 0..n {
                    assert!(
                        (x[i * k + lane] - single_x[i]).abs() <= 1e-12,
                        "n={n} k={k} lane={lane} row={i}: {} vs {}",
                        x[i * k + lane],
                        single_x[i]
                    );
                }
            }
        }
    }

    #[test]
    fn solve_many_into_single_lane_equals_solve_into() {
        let (_, a) = random_system(30, 2, 55);
        let mut lu = SparseLu::empty();
        lu.factor(&a).unwrap();
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut panel = vec![0.0; 30];
        let mut x = vec![0.0; 30];
        lu.solve_many_into(&b, &mut panel, 1);
        lu.solve_into(&b, &mut x);
        for i in 0..30 {
            assert!((panel[i] - x[i]).abs() <= 1e-15, "row {i}");
        }
    }

    #[test]
    fn solve_many_in_place_matches_solve_many_into() {
        for (n, extra, k, seed) in [(40usize, 3usize, 8usize, 17u64), (120, 4, 16, 18)] {
            let (_, a) = random_system(n, extra, seed);
            let mut lu = SparseLu::empty();
            lu.factor(&a).unwrap();
            let mut unit = crate::splitmix_stream(seed ^ 0x0ddc0ffe);
            let b: Vec<f64> = (0..n * k).map(|_| unit() - 0.5).collect();
            let mut expected = vec![0.0; n * k];
            lu.solve_many_into(&b, &mut expected, k);
            let mut consumed = b.clone();
            let mut x = vec![0.0; n * k];
            lu.solve_many_in_place(&mut consumed, &mut x, k);
            assert_eq!(x, expected, "n={n} k={k}");
        }
    }

    #[test]
    fn solve_many_prepivoted_matches_independent_solves() {
        for (n, extra, k, seed) in [
            (5usize, 2usize, 3usize, 23u64),
            (40, 3, 8, 24),
            (120, 4, 16, 25),
        ] {
            let (_, a) = random_system(n, extra, seed);
            let mut lu = SparseLu::empty();
            lu.factor(&a).unwrap();
            let mut unit = crate::splitmix_stream(seed ^ 0x9e37_79b9);
            let b: Vec<f64> = (0..n * k).map(|_| unit() - 0.5).collect();

            // Assemble the panel in pivotal row order, as a sweep caller
            // would: pivotal row `pinv[i]` holds original row `i`.
            let pinv = lu.row_permutation().to_vec();
            let mut pivoted = vec![0.0; n * k];
            for i in 0..n {
                pivoted[pinv[i] * k..(pinv[i] + 1) * k].copy_from_slice(&b[i * k..(i + 1) * k]);
            }
            let mut x = vec![0.0; n * k];
            lu.solve_many_prepivoted(&mut pivoted, &mut x, k);

            // The reciprocal-multiply pivots allow ulp-level differences
            // against the dividing single-RHS path.
            let mut single_b = vec![0.0; n];
            let mut single_x = vec![0.0; n];
            for lane in 0..k {
                for i in 0..n {
                    single_b[i] = b[i * k + lane];
                }
                lu.solve_into(&single_b, &mut single_x);
                for i in 0..n {
                    let tol = 1e-12 * single_x[i].abs().max(1.0);
                    assert!(
                        (x[i * k + lane] - single_x[i]).abs() <= tol,
                        "n={n} k={k} lane={lane} row={i}: {} vs {}",
                        x[i * k + lane],
                        single_x[i]
                    );
                }
            }
        }
    }

    #[test]
    fn repeated_solves_are_consistent() {
        let (_, a) = random_system(30, 2, 11);
        let mut lu = SparseLu::empty();
        lu.factor(&a).unwrap();
        let b: Vec<f64> = (0..30).map(|k| k as f64).collect();
        let mut x1 = vec![0.0; 30];
        let mut x2 = vec![0.0; 30];
        lu.solve_into(&b, &mut x1);
        lu.solve_into(&b, &mut x2);
        assert_eq!(x1, x2);
    }
}
