//! Root finding: quadratic formula (complex-aware), bisection, Newton and a
//! damped fixed-point iteration helper used by the Ceff solvers.

use crate::complex::Complex;

/// Roots of `a x^2 + b x + c = 0` as complex numbers.
///
/// Uses the numerically stable form that avoids cancellation between `-b` and
/// the discriminant.
///
/// # Panics
/// Panics if `a == 0` (not a quadratic).
///
/// ```
/// use rlc_numeric::roots::quadratic_roots;
/// let (r1, r2) = quadratic_roots(1.0, -3.0, 2.0);
/// let mut re = [r1.re, r2.re];
/// re.sort_by(f64::total_cmp);
/// assert!((re[0] - 1.0).abs() < 1e-12 && (re[1] - 2.0).abs() < 1e-12);
/// ```
pub fn quadratic_roots(a: f64, b: f64, c: f64) -> (Complex, Complex) {
    assert!(a != 0.0, "quadratic_roots called with a == 0");
    let disc = b * b - 4.0 * a * c;
    if disc >= 0.0 {
        let sq = disc.sqrt();
        // q = -(b + sign(b) * sqrt(disc)) / 2 avoids catastrophic cancellation
        let q = -0.5 * (b + b.signum() * sq);
        let (r1, r2) = if q != 0.0 {
            (q / a, c / q)
        } else {
            // b == 0 and c == 0
            (0.0, 0.0)
        };
        (Complex::real(r1), Complex::real(r2))
    } else {
        let sq = (-disc).sqrt();
        let re = -b / (2.0 * a);
        let im = sq / (2.0 * a);
        (Complex::new(re, im), Complex::new(re, -im))
    }
}

/// Result of an iterative root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootResult {
    /// Final abscissa.
    pub x: f64,
    /// Residual `f(x)` at the returned point.
    pub residual: f64,
    /// Number of iterations used.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Bisection on `[lo, hi]`.
///
/// # Panics
/// Panics if `f(lo)` and `f(hi)` have the same sign.
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
    max_iter: usize,
) -> RootResult {
    let mut flo = f(lo);
    let fhi = f(hi);
    assert!(
        flo * fhi <= 0.0,
        "bisection requires a sign change on the bracket ({flo} vs {fhi})"
    );
    let mut mid = 0.5 * (lo + hi);
    let mut fmid = f(mid);
    let mut iterations = 0;
    while (hi - lo).abs() > tol && iterations < max_iter {
        if flo * fmid <= 0.0 {
            hi = mid;
        } else {
            lo = mid;
            flo = fmid;
        }
        mid = 0.5 * (lo + hi);
        fmid = f(mid);
        iterations += 1;
    }
    RootResult {
        x: mid,
        residual: fmid,
        iterations,
        converged: (hi - lo).abs() <= tol,
    }
}

/// Newton-Raphson with numeric fallback to bisection-free damping: if a step
/// would diverge (|f| increases by more than 4x) the step is halved up to
/// five times.
pub fn newton<F, D>(mut f: F, mut df: D, x0: f64, tol: f64, max_iter: usize) -> RootResult
where
    F: FnMut(f64) -> f64,
    D: FnMut(f64) -> f64,
{
    let mut x = x0;
    let mut fx = f(x);
    for it in 0..max_iter {
        if fx.abs() <= tol {
            return RootResult {
                x,
                residual: fx,
                iterations: it,
                converged: true,
            };
        }
        let d = df(x);
        if d == 0.0 {
            break;
        }
        let mut step = fx / d;
        let mut xn = x - step;
        let mut fn_ = f(xn);
        let mut halvings = 0;
        while fn_.abs() > 4.0 * fx.abs() && halvings < 5 {
            step *= 0.5;
            xn = x - step;
            fn_ = f(xn);
            halvings += 1;
        }
        x = xn;
        fx = fn_;
    }
    RootResult {
        x,
        residual: fx,
        iterations: max_iter,
        converged: fx.abs() <= tol,
    }
}

/// Damped fixed-point iteration `x_{k+1} = (1 - damping) * x_k + damping * g(x_k)`.
///
/// This is exactly the shape of the paper's Ceff iterations ("start with an
/// initial guess equal to the total capacitance and iteratively improve the
/// effective capacitance until the value converges"). Convergence is declared
/// when the relative change drops below `rel_tol`.
pub fn fixed_point<G: FnMut(f64) -> f64>(
    mut g: G,
    x0: f64,
    damping: f64,
    rel_tol: f64,
    max_iter: usize,
) -> RootResult {
    assert!(damping > 0.0 && damping <= 1.0, "damping must be in (0, 1]");
    let mut x = x0;
    for it in 0..max_iter {
        let gx = g(x);
        let xn = (1.0 - damping) * x + damping * gx;
        let scale = x.abs().max(xn.abs()).max(1e-30);
        let change = (xn - x).abs() / scale;
        x = xn;
        if change < rel_tol {
            return RootResult {
                x,
                residual: change,
                iterations: it + 1,
                converged: true,
            };
        }
    }
    RootResult {
        x,
        residual: f64::NAN,
        iterations: max_iter,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn quadratic_real_roots() {
        let (r1, r2) = quadratic_roots(2.0, -4.0, -6.0); // roots -1, 3
        let mut roots = [r1.re, r2.re];
        roots.sort_by(f64::total_cmp);
        assert!(approx_eq(roots[0], -1.0, 1e-12));
        assert!(approx_eq(roots[1], 3.0, 1e-12));
        assert!(r1.im == 0.0 && r2.im == 0.0);
    }

    #[test]
    fn quadratic_complex_roots_are_conjugates() {
        let (r1, r2) = quadratic_roots(1.0, 2.0, 10.0); // -1 +/- 3j
        assert!(approx_eq(r1.re, -1.0, 1e-12));
        assert!(approx_eq(r1.im.abs(), 3.0, 1e-12));
        assert!(approx_eq(r2.im, -r1.im, 1e-12));
    }

    #[test]
    fn quadratic_double_root() {
        let (r1, r2) = quadratic_roots(1.0, -2.0, 1.0);
        assert!(approx_eq(r1.re, 1.0, 1e-12));
        assert!(approx_eq(r2.re, 1.0, 1e-12));
    }

    #[test]
    fn quadratic_is_stable_for_small_c() {
        // roots ~ -1e-8 and -1e8; naive formula loses the small one
        let (r1, r2) = quadratic_roots(1.0, 1e8 + 1e-8, 1.0);
        let small = r1.re.abs().min(r2.re.abs());
        assert!(approx_eq(small, 1e-8, 1e-6));
    }

    #[test]
    fn bisect_finds_cosine_root() {
        let r = bisect(|x| x.cos(), 0.0, 3.0, 1e-12, 200);
        assert!(r.converged);
        assert!(approx_eq(r.x, std::f64::consts::FRAC_PI_2, 1e-9));
    }

    #[test]
    #[should_panic(expected = "sign change")]
    fn bisect_requires_bracket() {
        let _ = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9, 100);
    }

    #[test]
    fn newton_converges_quadratically_on_sqrt() {
        let r = newton(|x| x * x - 2.0, |x| 2.0 * x, 1.0, 1e-14, 50);
        assert!(r.converged);
        assert!(approx_eq(r.x, std::f64::consts::SQRT_2, 1e-12));
        assert!(r.iterations < 10);
    }

    #[test]
    fn newton_reports_failure_on_zero_derivative() {
        let r = newton(|_| 1.0, |_| 0.0, 0.0, 1e-12, 10);
        assert!(!r.converged);
    }

    #[test]
    fn fixed_point_converges_for_contraction() {
        // x = cos(x) has the Dottie number as fixed point
        let r = fixed_point(|x| x.cos(), 1.0, 1.0, 1e-12, 500);
        assert!(r.converged);
        assert!(approx_eq(r.x, 0.739_085_133_215_160_6, 1e-9));
    }

    #[test]
    fn fixed_point_damping_stabilizes_oscillation() {
        // g(x) = 3 - x oscillates undamped; damping 0.5 converges to 1.5
        let r = fixed_point(|x| 3.0 - x, 0.0, 0.5, 1e-12, 500);
        assert!(r.converged);
        assert!(approx_eq(r.x, 1.5, 1e-9));
    }
}
