//! Dense matrices and LU factorization with partial pivoting.
//!
//! The MNA systems assembled by `rlc-spice` are modest (a few hundred
//! unknowns for the longest segmented lines), so a cache-friendly dense LU
//! with partial pivoting is both simple and fast enough. The factorization is
//! reused across Newton iterations whenever the matrix is unchanged.

use std::fmt;

/// A dense row-major matrix of `f64`.
///
/// ```
/// use rlc_numeric::DenseMatrix;
/// let mut a = DenseMatrix::zeros(2, 2);
/// a.set(0, 0, 4.0); a.set(0, 1, 1.0);
/// a.set(1, 0, 1.0); a.set(1, 1, 3.0);
/// let x = a.solve(&[1.0, 2.0]).unwrap();
/// assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
/// assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Error returned when a linear solve fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is singular (or numerically singular) — a zero pivot was
    /// encountered during elimination.
    Singular {
        /// Pivot column at which elimination broke down.
        column: usize,
    },
    /// Dimensions of the right-hand side do not match the matrix.
    DimensionMismatch,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular { column } => {
                write!(f, "matrix is singular at pivot column {column}")
            }
            SolveError::DimensionMismatch => write!(f, "right-hand side dimension mismatch"),
        }
    }
}

impl std::error::Error for SolveError {}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "inconsistent row lengths");
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to element `(i, j)` — the natural operation for MNA stamping.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] += v;
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// LU-factorizes the matrix (with partial pivoting) and returns the
    /// factorization for repeated solves.
    ///
    /// # Errors
    /// Returns [`SolveError::Singular`] if a pivot smaller than `1e-300` in
    /// magnitude is encountered.
    pub fn lu(&self) -> Result<LuFactors, SolveError> {
        assert_eq!(self.rows, self.cols, "LU requires a square matrix");
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // partial pivoting: find the largest |value| in column k at or below row k
            let mut pivot_row = k;
            let mut pivot_val = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-300 {
                return Err(SolveError::Singular { column: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    lu.swap(k * n + j, pivot_row * n + j);
                }
                perm.swap(k, pivot_row);
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let factor = lu[i * n + k] / pivot;
                lu[i * n + k] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        lu[i * n + j] -= factor * lu[k * n + j];
                    }
                }
            }
        }
        Ok(LuFactors { n, lu, perm })
    }

    /// Solves `A x = b` for `x`.
    ///
    /// # Errors
    /// Returns an error if the matrix is singular or the dimensions mismatch.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        if b.len() != self.rows {
            return Err(SolveError::DimensionMismatch);
        }
        Ok(self.lu()?.solve(b))
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.4e} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The result of an LU factorization, reusable for multiple right-hand sides.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
}

impl LuFactors {
    /// Solves `A x = b` using the stored factors.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the factorized dimension.
    #[allow(clippy::needless_range_loop)] // textbook triangular-solve indexing
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        // apply permutation
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // forward substitution (L has implicit unit diagonal)
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc;
        }
        // back substitution
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc / self.lu[i * n + i];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn solve_small_system() {
        let a = DenseMatrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ]);
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        assert!(approx_eq(x[0], 2.0, 1e-10));
        assert!(approx_eq(x[1], 3.0, 1e-10));
        assert!(approx_eq(x[2], -1.0, 1e-10));
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let a = DenseMatrix::identity(4);
        let b = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(a.solve(&b).unwrap(), b);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        match a.solve(&[1.0, 2.0]) {
            Err(SolveError::Singular { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = DenseMatrix::identity(3);
        assert_eq!(a.solve(&[1.0]), Err(SolveError::DimensionMismatch));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[3.0, 4.0]).unwrap();
        assert!(approx_eq(x[0], 4.0, 1e-12));
        assert!(approx_eq(x[1], 3.0, 1e-12));
    }

    #[test]
    fn lu_factors_reused_for_multiple_rhs() {
        let a = DenseMatrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let lu = a.lu().unwrap();
        for rhs in [[1.0, 2.0], [5.0, -1.0], [0.0, 0.0]] {
            let x = lu.solve(&rhs);
            let back = a.mul_vec(&x);
            assert!(approx_eq(back[0], rhs[0], 1e-10));
            assert!(approx_eq(back[1], rhs[1], 1e-10));
        }
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }

    #[test]
    fn add_at_accumulates() {
        let mut a = DenseMatrix::zeros(2, 2);
        a.add_at(0, 0, 1.5);
        a.add_at(0, 0, 2.5);
        assert_eq!(a.get(0, 0), 4.0);
        a.clear();
        assert_eq!(a.get(0, 0), 0.0);
    }
}

#[cfg(test)]
mod sweep_tests {
    use super::*;

    /// Deterministic pseudo-random stream in `[-1, 1)`.
    fn pseudo_random(seed: u64) -> impl FnMut() -> f64 {
        let mut unit = crate::splitmix_stream(seed);
        move || unit() * 2.0 - 1.0
    }

    /// Solving a pseudo-random diagonally-dominant system and multiplying
    /// back reproduces the right-hand side, for every size in 1..8 and many
    /// seeds.
    #[test]
    fn solve_then_multiply_roundtrips() {
        for n in 1usize..8 {
            for seed in 0..16u64 {
                let mut next = pseudo_random(seed.wrapping_mul(0x5851_f42d) + n as u64);
                let mut a = DenseMatrix::zeros(n, n);
                for i in 0..n {
                    for j in 0..n {
                        a.set(i, j, next());
                    }
                    // make it diagonally dominant so it is well conditioned
                    a.add_at(i, i, 10.0);
                }
                let b: Vec<f64> = (0..n).map(|_| next()).collect();
                let x = a.solve(&b).unwrap();
                let back = a.mul_vec(&x);
                for i in 0..n {
                    assert!(
                        (back[i] - b[i]).abs() < 1e-8,
                        "n={n} seed={seed} row {i}: {} vs {}",
                        back[i],
                        b[i]
                    );
                }
            }
        }
    }
}
