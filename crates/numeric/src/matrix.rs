//! Dense matrices and LU factorization with partial pivoting.
//!
//! The MNA systems assembled by `rlc-spice` are modest (a few hundred
//! unknowns for the longest segmented lines), so a cache-friendly dense LU
//! with partial pivoting is both simple and fast enough. The factorization is
//! reused across Newton iterations whenever the matrix is unchanged.

use std::fmt;

/// A dense row-major matrix of `f64`.
///
/// ```
/// use rlc_numeric::DenseMatrix;
/// let mut a = DenseMatrix::zeros(2, 2);
/// a.set(0, 0, 4.0); a.set(0, 1, 1.0);
/// a.set(1, 0, 1.0); a.set(1, 1, 3.0);
/// let x = a.solve(&[1.0, 2.0]).unwrap();
/// assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
/// assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Error returned when a linear solve fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is singular (or numerically singular) — a zero pivot was
    /// encountered during elimination.
    Singular {
        /// Pivot column at which elimination broke down.
        column: usize,
    },
    /// Dimensions of the right-hand side do not match the matrix.
    DimensionMismatch,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular { column } => {
                write!(f, "matrix is singular at pivot column {column}")
            }
            SolveError::DimensionMismatch => write!(f, "right-hand side dimension mismatch"),
        }
    }
}

impl std::error::Error for SolveError {}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "inconsistent row lengths");
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to element `(i, j)` — the natural operation for MNA stamping.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] += v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Resizes to `rows x cols` (zero-filled), keeping the allocation when it
    /// is already large enough.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Copies every element of `other` into `self`, resizing as needed. This
    /// is the restore operation of the split-stamp scheme: a cached static
    /// matrix is copied over the work matrix before the per-iteration stamps.
    pub fn copy_from(&mut self, other: &DenseMatrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// LU-factorizes the matrix (with partial pivoting) and returns the
    /// factorization for repeated solves.
    ///
    /// # Errors
    /// Returns [`SolveError::Singular`] if a pivot smaller than `1e-300` in
    /// magnitude is encountered.
    pub fn lu(&self) -> Result<LuFactors, SolveError> {
        let mut factors = LuFactors::empty();
        self.factor_into(&mut factors)?;
        Ok(factors)
    }

    /// LU-factorizes the matrix into an existing [`LuFactors`], reusing its
    /// buffers. This is the allocation-free refactorization used by hot
    /// simulation loops: the factorization workspace is allocated once and
    /// refilled for every Newton iteration.
    ///
    /// # Errors
    /// Returns [`SolveError::Singular`] if a pivot smaller than `1e-300` in
    /// magnitude is encountered.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn factor_into(&self, factors: &mut LuFactors) -> Result<(), SolveError> {
        assert_eq!(self.rows, self.cols, "LU requires a square matrix");
        let n = self.rows;
        factors.n = n;
        factors.lu.clear();
        factors.lu.extend_from_slice(&self.data);
        factors.perm.clear();
        factors.perm.extend(0..n);
        let lu = &mut factors.lu;
        let perm = &mut factors.perm;

        for k in 0..n {
            // partial pivoting: find the largest |value| in column k at or below row k
            let mut pivot_row = k;
            let mut pivot_val = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-300 {
                return Err(SolveError::Singular { column: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    lu.swap(k * n + j, pivot_row * n + j);
                }
                perm.swap(k, pivot_row);
            }
            let pivot = lu[k * n + k];
            // Slice-based elimination: `top` ends with the pivot row, and the
            // remaining rows are walked as exact chunks so the inner update
            // runs without bounds checks (same operation order as the naive
            // indexed loop, so results are bit-identical).
            let (top, bottom) = lu.split_at_mut((k + 1) * n);
            let pivot_tail = &top[k * n + k + 1..(k + 1) * n];
            for row in bottom.chunks_exact_mut(n) {
                let factor = row[k] / pivot;
                row[k] = factor;
                if factor != 0.0 {
                    for (x, &p) in row[k + 1..n].iter_mut().zip(pivot_tail) {
                        *x -= factor * p;
                    }
                }
            }
        }
        Ok(())
    }

    /// Largest absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Solves `A x = b` for `x`.
    ///
    /// # Errors
    /// Returns an error if the matrix is singular or the dimensions mismatch.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        if b.len() != self.rows {
            return Err(SolveError::DimensionMismatch);
        }
        Ok(self.lu()?.solve(b))
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.4e} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The result of an LU factorization, reusable for multiple right-hand sides.
#[derive(Debug, Clone, Default)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
}

impl LuFactors {
    /// Creates an empty factorization holder (dimension 0), to be filled by
    /// [`DenseMatrix::factor_into`]. Useful as a reusable workspace member.
    pub fn empty() -> Self {
        LuFactors {
            n: 0,
            lu: Vec::new(),
            perm: Vec::new(),
        }
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the factorized dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A x = b` for another right-hand side using the stored factors
    /// — the "factor once, resolve per step" operation of LTI transient
    /// analysis. Equivalent to [`LuFactors::solve`]; hot loops that own
    /// their buffers should prefer the allocation-free
    /// [`LuFactors::solve_into`].
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the factorized dimension.
    pub fn resolve(&self, b: &[f64]) -> Vec<f64> {
        self.solve(b)
    }

    /// Solves `A x = b` into a caller-provided buffer, with no allocation.
    /// `b` and `x` may not alias.
    ///
    /// # Panics
    /// Panics if `b.len()` or `x.len()` does not match the factorized
    /// dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        assert_eq!(x.len(), self.n);
        let n = self.n;
        // apply permutation
        for (xi, &p) in x.iter_mut().zip(&self.perm) {
            *xi = b[p];
        }
        // forward substitution (L has implicit unit diagonal); the split and
        // zip keep the inner dot products free of bounds checks while
        // preserving the accumulation order bit for bit.
        for i in 1..n {
            let (head, tail) = x.split_at_mut(i);
            let row = &self.lu[i * n..i * n + i];
            let mut acc = tail[0];
            for (a, xj) in row.iter().zip(head.iter()) {
                acc -= a * xj;
            }
            tail[0] = acc;
        }
        // back substitution
        for i in (0..n).rev() {
            let (head, tail) = x.split_at_mut(i + 1);
            let row = &self.lu[i * n + i + 1..(i + 1) * n];
            let mut acc = head[i];
            for (a, xj) in row.iter().zip(tail.iter()) {
                acc -= a * xj;
            }
            head[i] = acc / self.lu[i * n + i];
        }
    }

    /// Solves `A X = B` for a panel of `k` right-hand sides at once, with no
    /// allocation.
    ///
    /// The panel is an `n x k` matrix whose columns are the individual
    /// right-hand sides, stored row-major: entry `(i, j)` (component `i` of
    /// RHS `j`) lives at index `i * k + j`, so the `k` lane values of each
    /// unknown are contiguous. This keeps the inner lane loops of the
    /// triangular sweeps unit-stride — one pass over the factors serves the
    /// whole batch — which is what makes batched variation sweeps profitable.
    ///
    /// For every lane the floating-point operation order is identical to
    /// [`LuFactors::solve_into`], so each column of the result is
    /// bit-identical to an independent single-RHS solve.
    ///
    /// # Panics
    /// Panics if `b.len()` or `x.len()` is not `n * k`.
    pub fn solve_many_into(&self, b: &[f64], x: &mut [f64], k: usize) {
        let n = self.n;
        assert_eq!(b.len(), n * k, "rhs panel must be n * k");
        assert_eq!(x.len(), n * k, "solution panel must be n * k");
        if k == 0 {
            return;
        }
        // apply permutation to every lane
        for (xi, &p) in x.chunks_exact_mut(k).zip(&self.perm) {
            xi.copy_from_slice(&b[p * k..p * k + k]);
        }
        // forward substitution (L has implicit unit diagonal); lanes are the
        // inner loop so each factor entry is loaded once per panel.
        for i in 1..n {
            let (head, tail) = x.split_at_mut(i * k);
            let acc = &mut tail[..k];
            let row = &self.lu[i * n..i * n + i];
            for (a, xj) in row.iter().zip(head.chunks_exact(k)) {
                for (acc_l, &x_l) in acc.iter_mut().zip(xj.iter()) {
                    *acc_l -= a * x_l;
                }
            }
        }
        // back substitution
        for i in (0..n).rev() {
            let (head, tail) = x.split_at_mut((i + 1) * k);
            let xi = &mut head[i * k..];
            let row = &self.lu[i * n + i + 1..(i + 1) * n];
            for (a, xj) in row.iter().zip(tail.chunks_exact(k)) {
                for (xi_l, &x_l) in xi.iter_mut().zip(xj.iter()) {
                    *xi_l -= a * x_l;
                }
            }
            let d = self.lu[i * n + i];
            for v in xi.iter_mut() {
                *v /= d;
            }
        }
    }

    /// Smallest and largest pivot magnitudes of the factorization. Their
    /// ratio is a cheap conditioning proxy used to gate low-rank-update
    /// solve schemes that amplify the inverse of these factors.
    pub fn pivot_extremes(&self) -> (f64, f64) {
        let n = self.n;
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for i in 0..n {
            let p = self.lu[i * n + i].abs();
            min = min.min(p);
            max = max.max(p);
        }
        if n == 0 {
            (0.0, 0.0)
        } else {
            (min, max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn solve_small_system() {
        let a = DenseMatrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ]);
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        assert!(approx_eq(x[0], 2.0, 1e-10));
        assert!(approx_eq(x[1], 3.0, 1e-10));
        assert!(approx_eq(x[2], -1.0, 1e-10));
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let a = DenseMatrix::identity(4);
        let b = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(a.solve(&b).unwrap(), b);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        match a.solve(&[1.0, 2.0]) {
            Err(SolveError::Singular { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = DenseMatrix::identity(3);
        assert_eq!(a.solve(&[1.0]), Err(SolveError::DimensionMismatch));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[3.0, 4.0]).unwrap();
        assert!(approx_eq(x[0], 4.0, 1e-12));
        assert!(approx_eq(x[1], 3.0, 1e-12));
    }

    #[test]
    fn lu_factors_reused_for_multiple_rhs() {
        let a = DenseMatrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let lu = a.lu().unwrap();
        for rhs in [[1.0, 2.0], [5.0, -1.0], [0.0, 0.0]] {
            let x = lu.solve(&rhs);
            let back = a.mul_vec(&x);
            assert!(approx_eq(back[0], rhs[0], 1e-10));
            assert!(approx_eq(back[1], rhs[1], 1e-10));
        }
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }

    #[test]
    fn factor_into_reuses_buffers_and_matches_lu() {
        let a = DenseMatrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ]);
        let mut factors = LuFactors::empty();
        assert_eq!(factors.dim(), 0);
        a.factor_into(&mut factors).unwrap();
        assert_eq!(factors.dim(), 3);
        let b = [8.0, -11.0, -3.0];
        let mut x = vec![0.0; 3];
        factors.solve_into(&b, &mut x);
        assert!(approx_eq(x[0], 2.0, 1e-10));
        assert!(approx_eq(x[1], 3.0, 1e-10));
        assert!(approx_eq(x[2], -1.0, 1e-10));
        // resolve() answers further right-hand sides from the same factors.
        let y = factors.resolve(&[1.0, 0.0, 0.0]);
        let back = a.mul_vec(&y);
        assert!(approx_eq(back[0], 1.0, 1e-10));
        // Refactorizing a different matrix reuses the same buffers.
        let b2 = DenseMatrix::identity(2);
        b2.factor_into(&mut factors).unwrap();
        assert_eq!(factors.dim(), 2);
        assert_eq!(factors.solve(&[5.0, 7.0]), vec![5.0, 7.0]);
    }

    #[test]
    fn factor_into_reports_singularity() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let mut factors = LuFactors::empty();
        assert!(matches!(
            a.factor_into(&mut factors),
            Err(SolveError::Singular { .. })
        ));
    }

    #[test]
    fn pivot_extremes_and_max_abs_report_magnitudes() {
        let a = DenseMatrix::from_rows(&[vec![4.0, 1.0], vec![1.0, -0.5]]);
        assert_eq!(a.max_abs(), 4.0);
        let lu = a.lu().unwrap();
        let (min, max) = lu.pivot_extremes();
        assert_eq!(max, 4.0);
        // Second pivot: -0.5 - 1/4 * 1 = -0.75.
        assert!(approx_eq(min, 0.75, 1e-12));
        assert_eq!(LuFactors::empty().pivot_extremes(), (0.0, 0.0));
    }

    #[test]
    fn copy_from_and_resize_keep_contents_in_sync() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut b = DenseMatrix::zeros(1, 1);
        b.copy_from(&a);
        assert_eq!(b, a);
        b.resize_zeroed(3, 2);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.cols(), 2);
        assert_eq!(b.get(2, 1), 0.0);
    }

    #[test]
    fn add_at_accumulates() {
        let mut a = DenseMatrix::zeros(2, 2);
        a.add_at(0, 0, 1.5);
        a.add_at(0, 0, 2.5);
        assert_eq!(a.get(0, 0), 4.0);
        a.clear();
        assert_eq!(a.get(0, 0), 0.0);
    }
}

#[cfg(test)]
mod sweep_tests {
    use super::*;

    /// Deterministic pseudo-random stream in `[-1, 1)`.
    fn pseudo_random(seed: u64) -> impl FnMut() -> f64 {
        let mut unit = crate::splitmix_stream(seed);
        move || unit() * 2.0 - 1.0
    }

    /// A batched panel solve must agree with N independent `solve_into`
    /// calls lane by lane — and because the operation order is preserved the
    /// agreement is exact, far inside the 1e-12 acceptance bound.
    #[test]
    fn solve_many_into_matches_independent_solves() {
        for (n, k) in [(1usize, 1usize), (3, 4), (7, 2), (12, 16), (20, 5)] {
            let mut next = pseudo_random(0xbadc_0ffe + (n * 31 + k) as u64);
            let mut a = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a.set(i, j, next());
                }
                a.add_at(i, i, 8.0);
            }
            let mut factors = LuFactors::empty();
            a.factor_into(&mut factors).unwrap();

            // Interleaved panel: component i of RHS j at b[i * k + j].
            let b: Vec<f64> = (0..n * k).map(|_| next()).collect();
            let mut x = vec![0.0; n * k];
            factors.solve_many_into(&b, &mut x, k);

            let mut single_b = vec![0.0; n];
            let mut single_x = vec![0.0; n];
            for lane in 0..k {
                for i in 0..n {
                    single_b[i] = b[i * k + lane];
                }
                factors.solve_into(&single_b, &mut single_x);
                for i in 0..n {
                    assert_eq!(
                        x[i * k + lane].to_bits(),
                        single_x[i].to_bits(),
                        "n={n} k={k} lane={lane} row={i}"
                    );
                }
            }
        }
    }

    /// Solving a pseudo-random diagonally-dominant system and multiplying
    /// back reproduces the right-hand side, for every size in 1..8 and many
    /// seeds.
    #[test]
    fn solve_then_multiply_roundtrips() {
        for n in 1usize..8 {
            for seed in 0..16u64 {
                let mut next = pseudo_random(seed.wrapping_mul(0x5851_f42d) + n as u64);
                let mut a = DenseMatrix::zeros(n, n);
                for i in 0..n {
                    for j in 0..n {
                        a.set(i, j, next());
                    }
                    // make it diagonally dominant so it is well conditioned
                    a.add_at(i, i, 10.0);
                }
                let b: Vec<f64> = (0..n).map(|_| next()).collect();
                let x = a.solve(&b).unwrap();
                let back = a.mul_vec(&x);
                for i in 0..n {
                    assert!(
                        (back[i] - b[i]).abs() < 1e-8,
                        "n={n} seed={seed} row {i}: {} vs {}",
                        back[i],
                        b[i]
                    );
                }
            }
        }
    }
}
