//! Unit helpers.
//!
//! Everything in the workspace is stored in SI units (`f64` seconds, ohms,
//! farads, henries, volts, metres). These helper constructors keep test and
//! example code readable: `ps(100.0)` is far less error-prone than `100e-12`.

/// Picoseconds to seconds.
pub const fn ps(v: f64) -> f64 {
    v * 1e-12
}

/// Nanoseconds to seconds.
pub const fn ns(v: f64) -> f64 {
    v * 1e-9
}

/// Femtofarads to farads.
pub const fn ff(v: f64) -> f64 {
    v * 1e-15
}

/// Picofarads to farads.
pub const fn pf(v: f64) -> f64 {
    v * 1e-12
}

/// Nanohenries to henries.
pub const fn nh(v: f64) -> f64 {
    v * 1e-9
}

/// Picohenries to henries.
pub const fn ph(v: f64) -> f64 {
    v * 1e-12
}

/// Millimetres to metres.
pub const fn mm(v: f64) -> f64 {
    v * 1e-3
}

/// Micrometres to metres.
pub const fn um(v: f64) -> f64 {
    v * 1e-6
}

/// Nanometres to metres.
pub const fn nm(v: f64) -> f64 {
    v * 1e-9
}

/// Kiloohms to ohms.
pub const fn kohm(v: f64) -> f64 {
    v * 1e3
}

/// Seconds to picoseconds (for display).
pub const fn to_ps(v: f64) -> f64 {
    v * 1e12
}

/// Farads to femtofarads (for display).
pub const fn to_ff(v: f64) -> f64 {
    v * 1e15
}

/// Farads to picofarads (for display).
pub const fn to_pf(v: f64) -> f64 {
    v * 1e12
}

/// Henries to nanohenries (for display).
pub const fn to_nh(v: f64) -> f64 {
    v * 1e9
}

/// Metres to millimetres (for display).
pub const fn to_mm(v: f64) -> f64 {
    v * 1e3
}

/// Metres to micrometres (for display).
pub const fn to_um(v: f64) -> f64 {
    v * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn roundtrips() {
        assert!(approx_eq(to_ps(ps(123.0)), 123.0, 1e-12));
        assert!(approx_eq(to_ff(ff(45.0)), 45.0, 1e-12));
        assert!(approx_eq(to_pf(pf(1.1)), 1.1, 1e-12));
        assert!(approx_eq(to_nh(nh(5.14)), 5.14, 1e-12));
        assert!(approx_eq(to_mm(mm(5.0)), 5.0, 1e-12));
        assert!(approx_eq(to_um(um(1.6)), 1.6, 1e-12));
    }

    #[test]
    fn magnitudes_are_correct() {
        assert_eq!(ps(1.0), 1e-12);
        assert_eq!(ns(1.0), 1e-9);
        assert_eq!(ff(1.0), 1e-15);
        assert_eq!(pf(1.0), 1e-12);
        assert_eq!(nh(1.0), 1e-9);
        assert_eq!(ph(1.0), 1e-12);
        assert_eq!(mm(1.0), 1e-3);
        assert_eq!(um(1.0), 1e-6);
        assert_eq!(nm(1.0), 1e-9);
        assert_eq!(kohm(1.0), 1e3);
    }

    #[test]
    fn paper_case_reads_naturally() {
        // 5 mm / 1.6 um line from the paper: R=72.44, L=5.14 nH, C=1.10 pF
        let l = nh(5.14);
        let c = pf(1.10);
        let z0 = (l / c).sqrt();
        assert!(z0 > 60.0 && z0 < 75.0, "Z0 = {z0}");
        let tof = (l * c).sqrt();
        assert!(to_ps(tof) > 70.0 && to_ps(tof) < 80.0);
    }
}
