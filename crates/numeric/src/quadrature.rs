//! Numerical integration.
//!
//! The Ceff charge-matching integrals have closed forms; numerical quadrature
//! is used in tests to validate those closed forms and in the waveform module
//! to integrate sampled currents.

/// Composite Simpson's rule with `n` (even, >= 2) panels.
///
/// # Panics
/// Panics if `n` is zero or odd, or if `b < a`.
///
/// ```
/// use rlc_numeric::quadrature::simpson;
/// let v = simpson(|x| x * x, 0.0, 1.0, 100);
/// assert!((v - 1.0 / 3.0).abs() < 1e-10);
/// ```
pub fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "simpson needs an even, positive panel count"
    );
    assert!(b >= a, "integration bounds must be ordered");
    if a == b {
        return 0.0;
    }
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for k in 1..n {
        let x = a + k as f64 * h;
        acc += if k % 2 == 0 { 2.0 * f(x) } else { 4.0 * f(x) };
    }
    acc * h / 3.0
}

/// Adaptive Simpson integration to an absolute tolerance.
///
/// # Panics
/// Panics if `b < a`.
pub fn adaptive_simpson<F: Fn(f64) -> f64 + Copy>(f: F, a: f64, b: f64, tol: f64) -> f64 {
    assert!(b >= a, "integration bounds must be ordered");
    if a == b {
        return 0.0;
    }
    #[allow(clippy::too_many_arguments)]
    fn recurse<F: Fn(f64) -> f64 + Copy>(
        f: F,
        a: f64,
        b: f64,
        fa: f64,
        fb: f64,
        fm: f64,
        whole: f64,
        tol: f64,
        depth: usize,
    ) -> f64 {
        let m = 0.5 * (a + b);
        let lm = 0.5 * (a + m);
        let rm = 0.5 * (m + b);
        let flm = f(lm);
        let frm = f(rm);
        let left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
        let right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
        let delta = left + right - whole;
        if depth == 0 || delta.abs() <= 15.0 * tol {
            left + right + delta / 15.0
        } else {
            recurse(f, a, m, fa, fm, flm, left, tol / 2.0, depth - 1)
                + recurse(f, m, b, fm, fb, frm, right, tol / 2.0, depth - 1)
        }
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
    recurse(f, a, b, fa, fb, fm, whole, tol, 40)
}

/// Trapezoidal integration of already-sampled data `(xs, ys)`.
///
/// # Panics
/// Panics if the slices differ in length or have fewer than 2 points.
pub fn trapezoid_sampled(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two samples");
    xs.windows(2)
        .zip(ys.windows(2))
        .map(|(x, y)| 0.5 * (y[0] + y[1]) * (x[1] - x[0]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn simpson_is_exact_for_cubics() {
        let v = simpson(|x| x * x * x - 2.0 * x + 1.0, 0.0, 2.0, 2);
        // integral = 4 - 4 + 2 = 2
        assert!(approx_eq(v, 2.0, 1e-12));
    }

    #[test]
    fn simpson_converges_for_exponential() {
        let v = simpson(f64::exp, 0.0, 1.0, 64);
        assert!(approx_eq(v, std::f64::consts::E - 1.0, 1e-9));
    }

    #[test]
    fn simpson_zero_width_interval() {
        assert_eq!(simpson(|x| x, 1.0, 1.0, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn simpson_rejects_odd_panels() {
        let _ = simpson(|x| x, 0.0, 1.0, 3);
    }

    #[test]
    fn adaptive_simpson_handles_peaked_integrand() {
        // integral of 1/(1 + 100 x^2) from -1 to 1 = (2/10) atan(10)
        let v = adaptive_simpson(|x| 1.0 / (1.0 + 100.0 * x * x), -1.0, 1.0, 1e-10);
        let exact = 0.2 * 10.0f64.atan();
        assert!(approx_eq(v, exact, 1e-8));
    }

    #[test]
    fn adaptive_simpson_exp_decay_times_cosine() {
        // This is the shape of the Ceff imaginary-root integrand.
        let alpha = -2.0e9;
        let beta = 5.0e9;
        let t_end = 1.0e-9;
        let numeric = adaptive_simpson(|t| (alpha * t).exp() * (beta * t).cos(), 0.0, t_end, 1e-16);
        // closed form of \int e^{a t} cos(b t) dt
        let closed = {
            let d = alpha * alpha + beta * beta;
            let f = |t: f64| {
                (alpha * t).exp() * (alpha * (beta * t).cos() + beta * (beta * t).sin()) / d
            };
            f(t_end) - f(0.0)
        };
        assert!(approx_eq(numeric, closed, 1e-7));
    }

    #[test]
    fn trapezoid_sampled_matches_linear_exactly() {
        let xs: Vec<f64> = (0..=10).map(|k| k as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        // integral of 3x + 1 over [0, 10] = 150 + 10
        assert!(approx_eq(trapezoid_sampled(&xs, &ys), 160.0, 1e-12));
    }
}
