//! Minimal complex number type.
//!
//! The paper distinguishes the "real poles" and "imaginary (complex) poles"
//! cases of the fitted admittance denominator and derives separate closed
//! forms for each. Internally we compute everything with [`Complex`]
//! arithmetic and take real parts, which is both simpler and what the
//! separate real-valued formulas reduce to; the explicit trigonometric forms
//! are still provided in `rlc-ceff` and cross-checked against this type.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// ```
/// use rlc_numeric::Complex;
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!((a * b).re, 5.0);
/// assert_eq!((a * b).im, 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Imaginary unit `j`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Magnitude (absolute value).
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics in debug builds if the value is exactly zero.
    pub fn recip(self) -> Self {
        let n = self.norm_sqr();
        debug_assert!(n > 0.0, "reciprocal of zero complex number");
        Self::new(self.re / n, -self.im / n)
    }

    /// Complex exponential `e^(self)`.
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let re = ((r + self.re) / 2.0).max(0.0).sqrt();
        let im = ((r - self.re) / 2.0).max(0.0).sqrt();
        Self::new(re, if self.im >= 0.0 { im } else { -im })
    }

    /// Returns true if the imaginary part is negligible relative to the
    /// magnitude (or absolutely, near zero).
    pub fn is_approx_real(self, rel: f64) -> bool {
        let mag = self.abs();
        if mag < 1e-300 {
            return true;
        }
        self.im.abs() <= rel * mag
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}-{}j", self.re, -self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via the reciprocal is the point
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn arithmetic_basics() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, 4.0);
        assert_eq!(a + b, Complex::new(4.0, 6.0));
        assert_eq!(b - a, Complex::new(2.0, 2.0));
        assert_eq!(a * b, Complex::new(-5.0, 10.0));
        let q = b / a;
        assert!(approx_eq(q.re, 2.2, 1e-12));
        assert!(approx_eq(q.im, -0.4, 1e-12));
    }

    #[test]
    fn exp_of_imaginary_is_on_unit_circle() {
        let z = Complex::new(0.0, std::f64::consts::FRAC_PI_3).exp();
        assert!(approx_eq(z.abs(), 1.0, 1e-12));
        assert!(approx_eq(z.re, 0.5, 1e-12));
    }

    #[test]
    fn exp_splits_into_magnitude_and_phase() {
        let z = Complex::new(1.0, std::f64::consts::FRAC_PI_2).exp();
        assert!(approx_eq(z.re, 0.0, 1e-9) || z.re.abs() < 1e-12);
        assert!(approx_eq(z.im, std::f64::consts::E, 1e-12));
    }

    #[test]
    fn sqrt_roundtrips() {
        for &(re, im) in &[
            (4.0, 0.0),
            (-4.0, 0.0),
            (3.0, 4.0),
            (-3.0, -4.0),
            (0.0, 2.0),
        ] {
            let z = Complex::new(re, im);
            let r = z.sqrt();
            let back = r * r;
            assert!(approx_eq(back.re, re, 1e-10), "{z} -> {r}");
            assert!(approx_eq(back.im, im, 1e-10), "{z} -> {r}");
        }
    }

    #[test]
    fn sqrt_of_negative_real_is_positive_imaginary() {
        let r = Complex::real(-9.0).sqrt();
        assert!(approx_eq(r.im, 3.0, 1e-12));
        assert!(r.re.abs() < 1e-12);
    }

    #[test]
    fn recip_and_div_agree() {
        let a = Complex::new(2.0, -7.0);
        let one = a * a.recip();
        assert!(approx_eq(one.re, 1.0, 1e-12));
        assert!(one.im.abs() < 1e-12);
    }

    #[test]
    fn conj_negates_imaginary() {
        let a = Complex::new(1.5, -2.5);
        assert_eq!(a.conj(), Complex::new(1.5, 2.5));
        assert!(approx_eq((a * a.conj()).re, a.norm_sqr(), 1e-12));
    }

    #[test]
    fn is_approx_real_detection() {
        assert!(Complex::new(5.0, 1e-14).is_approx_real(1e-9));
        assert!(!Complex::new(5.0, 0.1).is_approx_real(1e-9));
        assert!(Complex::ZERO.is_approx_real(1e-9));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }
}
