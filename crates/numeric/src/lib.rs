//! # rlc-numeric
//!
//! Self-contained numerical utilities used by the RLC effective-capacitance
//! reproduction workspace.
//!
//! The crate deliberately avoids external numerical dependencies: the math
//! needed by the paper (complex arithmetic for pole handling, truncated power
//! series for moment propagation, dense LU for the MNA simulator, root
//! finding and interpolation for the Ceff iterations and cell tables) is small
//! and is implemented here with thorough tests.
//!
//! ## Example
//!
//! ```
//! use rlc_numeric::complex::Complex;
//! use rlc_numeric::roots::quadratic_roots;
//!
//! // Roots of s^2 + 2s + 5 = 0 are -1 +/- 2j.
//! let (r1, r2) = quadratic_roots(1.0, 2.0, 5.0);
//! assert!((r1 - Complex::new(-1.0, 2.0)).abs() < 1e-12
//!      || (r1 - Complex::new(-1.0, -2.0)).abs() < 1e-12);
//! assert!((r1.re - r2.re).abs() < 1e-12);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod complex;
pub mod diag;
pub mod interp;
pub mod matching;
pub mod matrix;
pub mod polynomial;
pub mod quadrature;
pub mod roots;
pub mod series;
pub mod sparse;
pub mod stats;
pub mod units;

pub use complex::Complex;
pub use diag::{Diagnostic, Severity};
pub use matching::{structural_rank, StructuralRank};
pub use matrix::{DenseMatrix, LuFactors};
pub use polynomial::Polynomial;
pub use series::PowerSeries;
pub use sparse::{CscMatrix, SparseLu};
pub use stats::{Accumulator, DistributionSummary, Rng};

/// Default absolute tolerance used across the workspace when comparing
/// floating point quantities that are expected to be "equal".
pub const DEFAULT_ABS_TOL: f64 = 1e-12;

/// Returns `true` when `a` and `b` agree within a relative tolerance `rel`
/// (falling back to an absolute comparison near zero).
///
/// ```
/// assert!(rlc_numeric::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!rlc_numeric::approx_eq(1.0, 1.1, 1e-3));
/// ```
pub fn approx_eq(a: f64, b: f64, rel: f64) -> bool {
    let scale = a.abs().max(b.abs());
    if scale < DEFAULT_ABS_TOL {
        return (a - b).abs() < DEFAULT_ABS_TOL;
    }
    (a - b).abs() <= rel * scale
}

/// Relative error of `value` with respect to `reference`, expressed as a
/// signed fraction (`+0.05` means 5 % high). Returns `0.0` when the reference
/// is exactly zero and the value is also zero, and `f64::INFINITY` when only
/// the reference is zero.
///
/// ```
/// assert!((rlc_numeric::relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
/// ```
pub fn relative_error(value: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if value == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (value - reference) / reference
    }
}

/// Deterministic splitmix64-based pseudo-random stream in `[0, 1)` — the
/// dependency-free stand-in for property-based generation used by the
/// sweep tests across this crate.
#[cfg(test)]
pub(crate) fn splitmix_stream(seed: u64) -> impl FnMut() -> f64 {
    let mut rng = stats::Rng::new(seed);
    move || rng.uniform()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_near_zero_uses_absolute() {
        assert!(approx_eq(0.0, 1e-15, 1e-9));
        assert!(approx_eq(-1e-14, 1e-14, 1e-9));
    }

    #[test]
    fn approx_eq_respects_relative_tolerance() {
        assert!(approx_eq(1000.0, 1000.5, 1e-3));
        assert!(!approx_eq(1000.0, 1002.0, 1e-3));
    }

    #[test]
    fn relative_error_signs() {
        assert!(relative_error(90.0, 100.0) < 0.0);
        assert!(relative_error(110.0, 100.0) > 0.0);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
    }
}
