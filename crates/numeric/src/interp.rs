//! Linear and bilinear interpolation on sorted axes.
//!
//! These primitives back the NLDM-style delay / output-transition lookup
//! tables in `rlc-charlib`. Values outside the characterized grid are
//! extrapolated linearly from the closest segment, matching the behaviour of
//! standard timing libraries.

/// Locates the segment of a sorted axis that brackets `x`, clamped to the
/// first/last segment for out-of-range values. Returns the lower index and
/// the (possibly <0 or >1) interpolation fraction.
///
/// # Panics
/// Panics if the axis has fewer than 2 points or is not strictly increasing.
pub fn locate(axis: &[f64], x: f64) -> (usize, f64) {
    assert!(axis.len() >= 2, "axis needs at least two points");
    for w in axis.windows(2) {
        assert!(w[1] > w[0], "axis must be strictly increasing");
    }
    let n = axis.len();
    let i = match axis.iter().position(|&a| a > x) {
        Some(0) => 0,
        Some(pos) => pos - 1,
        None => n - 2,
    };
    let i = i.min(n - 2);
    let frac = (x - axis[i]) / (axis[i + 1] - axis[i]);
    (i, frac)
}

/// Piecewise-linear interpolation of `ys` over the sorted axis `xs`, with
/// linear extrapolation outside the range.
///
/// ```
/// use rlc_numeric::interp::interp1;
/// let xs = [0.0, 1.0, 2.0];
/// let ys = [0.0, 10.0, 40.0];
/// assert_eq!(interp1(&xs, &ys, 0.5), 5.0);
/// assert_eq!(interp1(&xs, &ys, 3.0), 70.0); // extrapolated
/// ```
///
/// # Panics
/// Panics if `xs` and `ys` differ in length or `xs` has fewer than 2 points.
pub fn interp1(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "axis/value length mismatch");
    let (i, t) = locate(xs, x);
    ys[i] + t * (ys[i + 1] - ys[i])
}

/// Bilinear interpolation of a row-major grid `values[i][j]` defined on axes
/// `x_axis` (rows) and `y_axis` (columns), with linear extrapolation.
///
/// # Panics
/// Panics if the grid dimensions do not match the axes.
pub fn interp2(x_axis: &[f64], y_axis: &[f64], values: &[Vec<f64>], x: f64, y: f64) -> f64 {
    assert_eq!(values.len(), x_axis.len(), "row count mismatch");
    for row in values {
        assert_eq!(row.len(), y_axis.len(), "column count mismatch");
    }
    let (i, tx) = locate(x_axis, x);
    let (j, ty) = locate(y_axis, y);
    let v00 = values[i][j];
    let v01 = values[i][j + 1];
    let v10 = values[i + 1][j];
    let v11 = values[i + 1][j + 1];
    let v0 = v00 + ty * (v01 - v00);
    let v1 = v10 + ty * (v11 - v10);
    v0 + tx * (v1 - v0)
}

/// Interpolates the abscissa at which a monotonically sampled trace crosses
/// `target`. `xs` must be increasing; `ys` need not be monotonic — the first
/// crossing (in increasing `xs`) is returned. A trace sampled exactly on the
/// target counts as crossing at that sample when it arrives from the search
/// direction's side, and a trace that *starts* exactly on the target crosses
/// at its first sample. Returns `None` if the trace never crosses.
pub fn first_crossing(xs: &[f64], ys: &[f64], target: f64, rising: bool) -> Option<f64> {
    assert_eq!(xs.len(), ys.len());
    // A trace beginning exactly at the threshold has reached it at its first
    // sample — there is no earlier history to cross from — provided it then
    // proceeds on the search direction's side; a trace that immediately
    // leaves against the direction has not crossed (it may still cross
    // properly later, which the scan below finds).
    if ys.len() >= 2 && ys[0] == target {
        let toward = if rising {
            ys[1] >= target
        } else {
            ys[1] <= target
        };
        if toward {
            return Some(xs[0]);
        }
    }
    for k in 1..xs.len() {
        let (y0, y1) = (ys[k - 1], ys[k]);
        // Half-open comparison: the segment owns its upper sample, so a
        // trace sampled exactly on the threshold reports the crossing at
        // that sample instead of dropping or delaying it (the old strict
        // `y1 > target` missed exact landings). Approaches from the wrong
        // side — a dip that merely brushes the target during a
        // rising-direction search — deliberately do not count: the `y0`
        // comparison stays strict, so the trace must arrive from the side
        // the search direction implies.
        let crossed = if rising {
            y0 < target && y1 >= target
        } else {
            y0 > target && y1 <= target
        };
        if crossed {
            if (y1 - y0).abs() < 1e-300 {
                return Some(xs[k]);
            }
            let t = (target - y0) / (y1 - y0);
            return Some(xs[k - 1] + t * (xs[k] - xs[k - 1]));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn locate_clamps_and_brackets() {
        let axis = [1.0, 2.0, 4.0];
        assert_eq!(locate(&axis, 1.5), (0, 0.5));
        let (i, t) = locate(&axis, 3.0);
        assert_eq!(i, 1);
        assert!(approx_eq(t, 0.5, 1e-12));
        // below range -> negative fraction on first segment
        let (i, t) = locate(&axis, 0.0);
        assert_eq!(i, 0);
        assert!(t < 0.0);
        // above range -> fraction > 1 on last segment
        let (i, t) = locate(&axis, 10.0);
        assert_eq!(i, 1);
        assert!(t > 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn locate_rejects_unsorted_axis() {
        let _ = locate(&[1.0, 1.0, 2.0], 1.5);
    }

    #[test]
    fn interp1_interpolates_and_extrapolates() {
        let xs = [0.0, 10.0, 20.0];
        let ys = [0.0, 100.0, 150.0];
        assert!(approx_eq(interp1(&xs, &ys, 5.0), 50.0, 1e-12));
        assert!(approx_eq(interp1(&xs, &ys, 15.0), 125.0, 1e-12));
        assert!(approx_eq(interp1(&xs, &ys, -10.0), -100.0, 1e-12));
        assert!(approx_eq(interp1(&xs, &ys, 30.0), 200.0, 1e-12));
    }

    #[test]
    fn interp2_reproduces_bilinear_surface() {
        // f(x, y) = 2x + 3y is reproduced exactly by bilinear interpolation
        let xa = [0.0, 1.0, 2.0];
        let ya = [0.0, 1.0];
        let grid: Vec<Vec<f64>> = xa
            .iter()
            .map(|&x| ya.iter().map(|&y| 2.0 * x + 3.0 * y).collect())
            .collect();
        for &(x, y) in &[(0.5, 0.5), (1.5, 0.25), (2.5, 1.5), (-0.5, 0.0)] {
            assert!(approx_eq(
                interp2(&xa, &ya, &grid, x, y),
                2.0 * x + 3.0 * y,
                1e-12
            ));
        }
    }

    #[test]
    fn first_crossing_rising_and_falling() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let rising = [0.0, 0.4, 0.8, 1.2];
        let x = first_crossing(&xs, &rising, 0.6, true).unwrap();
        assert!(approx_eq(x, 1.5, 1e-12));
        let falling = [1.0, 0.7, 0.2, 0.0];
        let x = first_crossing(&xs, &falling, 0.5, false).unwrap();
        assert!(approx_eq(x, 1.4, 1e-12));
        assert!(first_crossing(&xs, &rising, 2.0, true).is_none());
    }

    #[test]
    fn first_crossing_exact_hit_at_first_sample() {
        // The trace starts exactly on the threshold: the crossing is at the
        // first sample, not dropped (the old strict `y0 < target` comparison
        // never matched a segment starting on the target).
        let xs = [0.0, 1.0, 2.0];
        let rising = [0.5, 0.9, 1.3];
        assert_eq!(first_crossing(&xs, &rising, 0.5, true), Some(0.0));
        let falling = [0.5, 0.2, 0.0];
        assert_eq!(first_crossing(&xs, &falling, 0.5, false), Some(0.0));
        // Starting at the threshold but moving against the search direction
        // is not a crossing: a purely falling trace has no rising crossing.
        assert_eq!(first_crossing(&xs, &falling, 0.5, true), None);
        assert_eq!(first_crossing(&xs, &rising, 0.5, false), None);
        // … unless the trace comes back and crosses properly later.
        let dip_then_rise = [0.5, 0.2, 0.9];
        let x = first_crossing(&xs, &dip_then_rise, 0.5, true).unwrap();
        assert!(approx_eq(x, 1.0 + 3.0 / 7.0, 1e-12));
    }

    #[test]
    fn first_crossing_exact_hit_mid_trace() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        // Sampled exactly on the threshold while rising: interpolation
        // degenerates to the sample itself.
        let ys = [0.0, 0.5, 1.0, 1.5];
        assert_eq!(first_crossing(&xs, &ys, 0.5, true), Some(1.0));
        // Plateau exactly at the threshold entered from below: the first
        // plateau sample wins.
        let plateau = [0.0, 0.5, 0.5, 1.0];
        assert_eq!(first_crossing(&xs, &plateau, 0.5, true), Some(1.0));
    }

    #[test]
    fn first_crossing_ignores_wrong_direction_touches() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        // A bump that rises to the target exactly and falls back is not a
        // falling crossing — reporting it would fabricate a falling edge
        // (e.g. a bogus 90 % crossing in a falling slew measurement).
        let bump = [0.3, 0.5, 0.3, 0.3];
        assert_eq!(first_crossing(&xs, &bump, 0.5, false), None);
        // Symmetrically, a dip that descends to the target exactly and rises
        // again is not a rising crossing: the trace never arrived from below.
        let dip = [1.0, 0.5, 0.8, 1.2];
        assert_eq!(first_crossing(&xs, &dip, 0.5, true), None);
        // The bump *is* the rising crossing, at its exact sample.
        assert_eq!(first_crossing(&xs, &bump, 0.5, true), Some(1.0));
    }

    #[test]
    fn first_crossing_exact_hit_at_last_sample() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 0.2, 0.5];
        assert_eq!(first_crossing(&xs, &ys, 0.5, true), Some(2.0));
        // Below the target everywhere else and no exact hit: still none.
        assert!(first_crossing(&xs, &ys, 0.6, true).is_none());
    }

    #[test]
    fn first_crossing_returns_first_of_multiple() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.0, 1.0, 0.0, 1.0, 0.0];
        let x = first_crossing(&xs, &ys, 0.5, true).unwrap();
        assert!(approx_eq(x, 0.5, 1e-12));
    }
}
