//! Dense real polynomials in one variable.
//!
//! Used for admittance numerators/denominators, companion-model algebra and
//! for checking the rational moment fit in `rlc-moments`.

use crate::complex::Complex;
use crate::roots::quadratic_roots;

/// A polynomial `c0 + c1 x + c2 x^2 + ...` with real coefficients.
///
/// ```
/// use rlc_numeric::Polynomial;
/// let p = Polynomial::new(vec![1.0, 2.0, 3.0]); // 1 + 2x + 3x^2
/// assert_eq!(p.eval(2.0), 17.0);
/// assert_eq!(p.degree(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients in ascending power order.
    /// Trailing (highest-order) zero coefficients are trimmed.
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut p = Self { coeffs };
        p.trim();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { coeffs: vec![] }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Self::new(vec![c])
    }

    /// Coefficients in ascending power order (may be empty for the zero
    /// polynomial).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Coefficient of `x^k` (zero if beyond the stored degree).
    pub fn coeff(&self, k: usize) -> f64 {
        self.coeffs.get(k).copied().unwrap_or(0.0)
    }

    /// Degree of the polynomial; the zero polynomial reports degree 0.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Returns true for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    fn trim(&mut self) {
        while matches!(self.coeffs.last(), Some(&c) if c == 0.0) {
            self.coeffs.pop();
        }
    }

    /// Evaluates the polynomial at a real point using Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluates the polynomial at a complex point.
    pub fn eval_complex(&self, x: Complex) -> Complex {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex::ZERO, |acc, &c| acc * x + Complex::real(c))
    }

    /// Derivative polynomial.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::zero();
        }
        Polynomial::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(k, &c)| c * k as f64)
                .collect(),
        )
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(other.coeffs.len());
        let coeffs = (0..n).map(|k| self.coeff(k) + other.coeff(k)).collect();
        Polynomial::new(coeffs)
    }

    /// Polynomial multiplication.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        if self.is_zero() || other.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = vec![0.0; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Polynomial::new(coeffs)
    }

    /// Scales every coefficient by `k`.
    pub fn scale(&self, k: f64) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|&c| c * k).collect())
    }

    /// Roots of a quadratic (degree <= 2) polynomial.
    ///
    /// Returns `None` when the polynomial is not genuinely quadratic (leading
    /// coefficient zero) or is constant.
    pub fn quadratic_roots(&self) -> Option<(Complex, Complex)> {
        if self.degree() != 2 || self.coeff(2) == 0.0 {
            return None;
        }
        Some(quadratic_roots(self.coeff(2), self.coeff(1), self.coeff(0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn eval_and_degree() {
        let p = Polynomial::new(vec![3.0, 0.0, 2.0]); // 3 + 2x^2
        assert_eq!(p.degree(), 2);
        assert_eq!(p.eval(0.0), 3.0);
        assert_eq!(p.eval(2.0), 11.0);
    }

    #[test]
    fn trailing_zeros_are_trimmed() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
    }

    #[test]
    fn zero_polynomial_behaviour() {
        let z = Polynomial::zero();
        assert!(z.is_zero());
        assert_eq!(z.eval(5.0), 0.0);
        assert_eq!(z.degree(), 0);
        assert!(z.derivative().is_zero());
    }

    #[test]
    fn derivative_of_cubic() {
        // 1 + x + x^2 + x^3 -> 1 + 2x + 3x^2
        let p = Polynomial::new(vec![1.0, 1.0, 1.0, 1.0]);
        assert_eq!(p.derivative().coeffs(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn add_and_mul() {
        let a = Polynomial::new(vec![1.0, 1.0]); // 1 + x
        let b = Polynomial::new(vec![-1.0, 1.0]); // -1 + x
        assert_eq!(a.add(&b).coeffs(), &[0.0, 2.0]);
        assert_eq!(a.mul(&b).coeffs(), &[-1.0, 0.0, 1.0]); // x^2 - 1
    }

    #[test]
    fn complex_evaluation_matches_real_on_real_axis() {
        let p = Polynomial::new(vec![2.0, -3.0, 0.5, 1.0]);
        for &x in &[-2.0, -0.5, 0.0, 1.3, 4.0] {
            let c = p.eval_complex(Complex::real(x));
            assert!(approx_eq(c.re, p.eval(x), 1e-12));
            assert!(c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn quadratic_roots_real_and_complex() {
        // x^2 - 3x + 2 -> roots 1, 2
        let p = Polynomial::new(vec![2.0, -3.0, 1.0]);
        let (r1, r2) = p.quadratic_roots().unwrap();
        let mut roots = [r1.re, r2.re];
        roots.sort_by(f64::total_cmp);
        assert!(approx_eq(roots[0], 1.0, 1e-12));
        assert!(approx_eq(roots[1], 2.0, 1e-12));

        // x^2 + 1 -> +/- j
        let p = Polynomial::new(vec![1.0, 0.0, 1.0]);
        let (r1, _) = p.quadratic_roots().unwrap();
        assert!(r1.re.abs() < 1e-12);
        assert!(approx_eq(r1.im.abs(), 1.0, 1e-12));

        // not a quadratic
        assert!(Polynomial::new(vec![1.0, 2.0]).quadratic_roots().is_none());
    }

    #[test]
    fn scale_multiplies_all_coefficients() {
        let p = Polynomial::new(vec![1.0, -2.0, 4.0]).scale(0.5);
        assert_eq!(p.coeffs(), &[0.5, -1.0, 2.0]);
    }
}
