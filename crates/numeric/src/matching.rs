//! Maximum bipartite matching over a sparse matrix pattern.
//!
//! The structural rank of a matrix is the size of a maximum matching between
//! its rows and columns in the bipartite graph induced by the nonzero
//! pattern. A square system whose structural rank is below its dimension is
//! *structurally singular*: no permutation produces a zero-free diagonal, so
//! every factorization — dense or sparse, with any pivoting — must hit an
//! exactly zero pivot. Detecting this from the pattern alone lets a lint
//! pass reject such systems before any numeric work happens, and name the
//! deficient rows instead of reporting a cryptic "singular matrix at t=…".
//!
//! The implementation is Kuhn's augmenting-path algorithm (Hopcroft–Karp
//! without the layering): `O(V · E)` worst case, which is ample for MNA
//! patterns whose nonzero count is a small multiple of the unknown count.

/// Result of a structural-rank analysis of an `n × n` sparsity pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuralRank {
    /// Size of the maximum row↔column matching.
    pub rank: usize,
    /// Matrix dimension the pattern was analyzed against.
    pub dim: usize,
    /// Rows left unmatched by the maximum matching (sorted ascending).
    /// Empty iff `rank == dim`.
    pub unmatched_rows: Vec<usize>,
}

impl StructuralRank {
    /// `true` when the pattern admits a zero-free diagonal under some
    /// permutation — i.e. the system is not structurally singular.
    pub fn is_full(&self) -> bool {
        self.rank == self.dim
    }
}

/// Computes the structural rank of an `n × n` pattern given as `(row, col)`
/// nonzero positions. Duplicate entries are tolerated; entries out of range
/// are ignored.
pub fn structural_rank(n: usize, pattern: &[(usize, usize)]) -> StructuralRank {
    // Adjacency: columns reachable from each row.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(r, c) in pattern {
        if r < n && c < n {
            adj[r].push(c);
        }
    }
    for cols in &mut adj {
        cols.sort_unstable();
        cols.dedup();
    }

    // match_col[c] = row currently matched to column c.
    let mut match_col: Vec<Option<usize>> = vec![None; n];
    let mut match_row: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];

    fn try_augment(
        row: usize,
        adj: &[Vec<usize>],
        match_col: &mut [Option<usize>],
        match_row: &mut [Option<usize>],
        visited: &mut [bool],
    ) -> bool {
        for &c in &adj[row] {
            if visited[c] {
                continue;
            }
            visited[c] = true;
            let free = match match_col[c] {
                None => true,
                Some(other) => try_augment(other, adj, match_col, match_row, visited),
            };
            if free {
                match_col[c] = Some(row);
                match_row[row] = Some(c);
                return true;
            }
        }
        false
    }

    let mut rank = 0;
    for row in 0..n {
        visited.iter_mut().for_each(|v| *v = false);
        if try_augment(row, &adj, &mut match_col, &mut match_row, &mut visited) {
            rank += 1;
        }
    }

    let unmatched_rows = (0..n).filter(|&r| match_row[r].is_none()).collect();
    StructuralRank {
        rank,
        dim: n,
        unmatched_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_pattern_is_full_rank() {
        let pattern: Vec<(usize, usize)> = (0..5).map(|i| (i, i)).collect();
        let sr = structural_rank(5, &pattern);
        assert!(sr.is_full());
        assert!(sr.unmatched_rows.is_empty());
    }

    #[test]
    fn empty_row_is_unmatched() {
        // Row 1 has no entries.
        let pattern = vec![(0, 0), (2, 2), (2, 1)];
        let sr = structural_rank(3, &pattern);
        assert_eq!(sr.rank, 2);
        assert_eq!(sr.unmatched_rows, vec![1]);
    }

    #[test]
    fn duplicate_rows_competing_for_one_column() {
        // Rows 1 and 2 both only reach column 0; one must lose.
        let pattern = vec![(0, 1), (0, 2), (1, 0), (2, 0)];
        let sr = structural_rank(3, &pattern);
        assert_eq!(sr.rank, 2);
        assert_eq!(sr.unmatched_rows.len(), 1);
        assert!(sr.unmatched_rows[0] == 1 || sr.unmatched_rows[0] == 2);
    }

    #[test]
    fn augmenting_path_reassigns_earlier_match() {
        // Row 0 can take col 0 or 1, row 1 only col 0: augmentation must
        // move row 0 to col 1 so both match.
        let pattern = vec![(0, 0), (0, 1), (1, 0)];
        let sr = structural_rank(2, &pattern);
        assert!(sr.is_full());
    }

    #[test]
    fn duplicates_and_out_of_range_tolerated() {
        let pattern = vec![(0, 0), (0, 0), (7, 1), (1, 9), (1, 1)];
        let sr = structural_rank(2, &pattern);
        assert!(sr.is_full());
    }

    #[test]
    fn dense_full_pattern_full_rank() {
        let mut pattern = Vec::new();
        for r in 0..8 {
            for c in 0..8 {
                pattern.push((r, c));
            }
        }
        let sr = structural_rank(8, &pattern);
        assert!(sr.is_full());
    }
}
