//! The timing-service daemon.
//!
//! ```text
//! rlc-serviced [--listen ADDR] [--shards N] [--cache-dir DIR] [--result-cache-dir DIR]
//! ```
//!
//! With `--shards 1` (the default) the process serves clients directly;
//! with more shards it spawns N copies of itself as worker processes (all
//! sharing `--cache-dir` and `--result-cache-dir`) and coordinates them
//! behind one listener. A shared `--result-cache-dir` makes repeated
//! submissions of unchanged stages replay from disk instead of
//! re-simulating, and lets the coordinator replant dependent chains from a
//! dead shard onto survivors instead of failing them with `SHARD_LOST`.

use std::path::PathBuf;
use std::process::ExitCode;

use rlc_service::{maybe_run_worker_from_env, Server, ShardServer};

const DEFAULT_LISTEN: &str = "127.0.0.1:4525";
const USAGE: &str =
    "usage: rlc-serviced [--listen ADDR] [--shards N] [--cache-dir DIR] [--result-cache-dir DIR]";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    if maybe_run_worker_from_env() {
        return ExitCode::SUCCESS;
    }

    let mut listen = DEFAULT_LISTEN.to_string();
    let mut shards: usize = 1;
    let mut cache_dir: Option<PathBuf> = None;
    let mut result_cache_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(value) => listen = value,
                None => return usage(),
            },
            "--shards" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => shards = value,
                None => return usage(),
            },
            "--cache-dir" => match args.next() {
                Some(value) => cache_dir = Some(PathBuf::from(value)),
                None => return usage(),
            },
            "--result-cache-dir" => match args.next() {
                Some(value) => result_cache_dir = Some(PathBuf::from(value)),
                None => return usage(),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    if shards <= 1 {
        match Server::bind(&listen, cache_dir.as_deref(), result_cache_dir.as_deref()) {
            Ok(server) => {
                eprintln!("rlc-serviced: serving on {}", server.local_addr());
                server.serve();
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("rlc-serviced: failed to start: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let exe = match std::env::current_exe() {
            Ok(exe) => exe,
            Err(e) => {
                eprintln!("rlc-serviced: cannot locate own executable: {e}");
                return ExitCode::FAILURE;
            }
        };
        match ShardServer::spawn(
            &listen,
            shards,
            cache_dir.as_deref(),
            result_cache_dir.as_deref(),
            &exe,
        ) {
            Ok(server) => {
                eprintln!(
                    "rlc-serviced: coordinating {shards} shards on {}",
                    server.local_addr()
                );
                server.serve();
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("rlc-serviced: failed to start shard fleet: {e}");
                ExitCode::FAILURE
            }
        }
    }
}
