//! Frame layer of the service protocol: length-prefixed, versioned,
//! checksummed binary frames over any `Read`/`Write` pair.
//!
//! The workspace is dependency-free by policy, so the framing is hand-rolled
//! the same way [`rlc_charlib::cache::CharCache`]'s on-disk format is:
//!
//! ```text
//! magic            8 bytes   b"RLCWIRE\0"
//! protocol version 4 bytes   u32 LE (PROTOCOL_VERSION)
//! payload length   8 bytes   u64 LE
//! payload          N bytes   message bytes (see `protocol`)
//! checksum         8 bytes   u64 LE, FNV-1a over the payload
//! ```
//!
//! Every field after the magic is fixed-position, so a reader that rejects a
//! frame for a *stale version* or a *bad checksum* still knows where the
//! frame ends and can keep the stream synchronized — those two conditions
//! are recoverable. A wrong magic means the stream is desynchronized and the
//! connection must close; an oversized length prefix is either corruption or
//! abuse and closes too (after the typed error is reported).

use std::io::{Read, Write};

/// Magic bytes opening every frame.
pub const MAGIC: &[u8; 8] = b"RLCWIRE\0";

/// Protocol version carried in every frame. Bump on any message-layout
/// change; both ends reject mismatched frames with a typed
/// [`WireError::StaleVersion`] instead of misparsing them.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame payload (16 MiB). Large enough for any stage
/// submission or report, small enough that a corrupt or hostile length
/// prefix cannot make the receiver allocate unbounded memory.
pub const MAX_PAYLOAD: u64 = 16 * 1024 * 1024;

/// Typed failures of the frame layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended mid-frame (or before one started, when `eof_ok` was
    /// not requested): the peer went away or the frame was truncated.
    Truncated,
    /// The frame did not start with [`MAGIC`]: the stream is desynchronized.
    BadMagic,
    /// The frame carried a different protocol version. The offending frame
    /// was consumed in full, so the connection remains usable.
    StaleVersion {
        /// The version the peer sent.
        got: u32,
    },
    /// The payload length exceeded [`MAX_PAYLOAD`].
    Oversized {
        /// The length the prefix declared.
        declared: u64,
    },
    /// The payload checksum did not match. The frame was consumed in full,
    /// so the connection remains usable.
    BadChecksum,
    /// The payload decoded to no valid message (unknown tag, short buffer,
    /// trailing bytes).
    Malformed {
        /// What failed to decode.
        what: String,
    },
    /// An underlying socket/stream error.
    Io {
        /// The I/O error, stringified (keeps the type `Clone` + `PartialEq`).
        what: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame (peer closed mid-message)"),
            WireError::BadMagic => write!(f, "bad frame magic (stream desynchronized)"),
            WireError::StaleVersion { got } => write!(
                f,
                "stale protocol version {got} (this end speaks {PROTOCOL_VERSION})"
            ),
            WireError::Oversized { declared } => write!(
                f,
                "oversized frame payload ({declared} bytes, limit {MAX_PAYLOAD})"
            ),
            WireError::BadChecksum => write!(f, "frame payload checksum mismatch"),
            WireError::Malformed { what } => write!(f, "malformed message payload: {what}"),
            WireError::Io { what } => write!(f, "stream error: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::Truncated,
            _ => WireError::Io {
                what: e.to_string(),
            },
        }
    }
}

/// 64-bit FNV-1a, byte-for-byte the same function `CharCache` uses — small,
/// dependency-free, stable across platforms.
pub fn fnv(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Writes one frame around `payload`.
///
/// # Errors
/// [`WireError::Oversized`] when the payload exceeds [`MAX_PAYLOAD`];
/// [`WireError::Io`]/[`WireError::Truncated`] on stream failures.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() as u64 > MAX_PAYLOAD {
        return Err(WireError::Oversized {
            declared: payload.len() as u64,
        });
    }
    let mut frame = Vec::with_capacity(payload.len() + 28);
    frame.extend_from_slice(MAGIC);
    frame.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&fnv(payload).to_le_bytes());
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame and returns its payload. `None` when the stream is
/// cleanly at end-of-file *before* any frame byte arrived (the peer closed
/// between messages — the normal way a conversation ends).
///
/// # Errors
/// Every [`WireError`] variant; see the module docs for which ones leave the
/// stream re-usable (`StaleVersion`, `BadChecksum`) and which mean the
/// connection is lost (`Truncated`, `BadMagic`, `Oversized`, `Io`).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut magic = [0u8; 8];
    // Distinguish "closed between frames" (Ok(None)) from "closed inside a
    // frame" (Truncated): only a zero-byte first read is a clean close.
    let first = r.read(&mut magic).map_err(WireError::from)?;
    if first == 0 {
        return Ok(None);
    }
    r.read_exact(&mut magic[first..])?;
    if &magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let mut version = [0u8; 4];
    r.read_exact(&mut version)?;
    let version = u32::from_le_bytes(version);
    let mut len = [0u8; 8];
    r.read_exact(&mut len)?;
    let len = u64::from_le_bytes(len);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized { declared: len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut checksum = [0u8; 8];
    r.read_exact(&mut checksum)?;
    // Version and checksum are checked only after the whole frame has been
    // consumed, so rejecting the frame leaves the stream on a frame boundary.
    if version != PROTOCOL_VERSION {
        return Err(WireError::StaleVersion { got: version });
    }
    if u64::from_le_bytes(checksum) != fnv(&payload) {
        return Err(WireError::BadChecksum);
    }
    Ok(Some(payload))
}

/// Whether the connection can keep serving after this frame-layer error
/// (the offending frame was fully consumed and the stream is still on a
/// frame boundary).
pub fn is_recoverable(error: &WireError) -> bool {
    matches!(
        error,
        WireError::StaleVersion { .. } | WireError::BadChecksum | WireError::Malformed { .. }
    )
}

// --- payload primitives ---------------------------------------------------

/// Append-only payload encoder (little-endian, length-prefixed strings and
/// slices; `f64` as IEEE-754 bit patterns so round trips are bit-identical).
#[derive(Debug, Default)]
pub struct Encoder(pub Vec<u8>);

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Encoder(Vec::new())
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) {
        self.u64(v.len() as u64);
        self.0.extend_from_slice(v.as_bytes());
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn u64_slice(&mut self, vs: &[u64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u64(v);
        }
    }
}

/// Cursor-style payload decoder; every accessor returns `None` past the end,
/// which the message layer turns into [`WireError::Malformed`].
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts decoding at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Decoder { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    /// Reads a bool (strictly 0 or 1, anything else is malformed).
    pub fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string (length validated against the
    /// remaining bytes before any allocation).
    pub fn string(&mut self) -> Option<String> {
        let n = self.u64()? as usize;
        if n > self.bytes.len() - self.pos {
            return None;
        }
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn u64_vec(&mut self) -> Option<Vec<u64>> {
        let n = self.u64()? as usize;
        if n.checked_mul(8)? > self.bytes.len() - self.pos {
            return None;
        }
        (0..n).map(|_| self.u64()).collect()
    }

    /// Whether every byte has been consumed (messages must decode exactly).
    pub fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frames").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello frames");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        // Clean EOF between frames.
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn truncated_frames_are_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload bytes").unwrap();
        for cut in [1, 7, 12, 20, buf.len() - 1] {
            let mut r = Cursor::new(&buf[..cut]);
            assert_eq!(read_frame(&mut r).unwrap_err(), WireError::Truncated);
        }
    }

    #[test]
    fn bad_magic_stale_version_and_checksum_are_typed() {
        let mut good = Vec::new();
        write_frame(&mut good, b"abc").unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(
            read_frame(&mut Cursor::new(bad_magic)).unwrap_err(),
            WireError::BadMagic
        );

        let mut stale = good.clone();
        stale[8] = (PROTOCOL_VERSION + 1) as u8;
        let mut r = Cursor::new(&stale);
        assert_eq!(
            read_frame(&mut r).unwrap_err(),
            WireError::StaleVersion {
                got: PROTOCOL_VERSION + 1
            }
        );
        // The stale frame was consumed in full: the cursor sits at EOF, the
        // stream boundary is intact.
        assert!(read_frame(&mut r).unwrap().is_none());

        let mut flipped = good.clone();
        flipped[20] ^= 0x01; // first payload byte
        let mut r = Cursor::new(&flipped);
        assert_eq!(read_frame(&mut r).unwrap_err(), WireError::BadChecksum);
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_payloads_are_rejected_on_both_sides() {
        // Writer side refuses before touching the stream.
        struct NoWrite;
        impl Write for NoWrite {
            fn write(&mut self, _b: &[u8]) -> std::io::Result<usize> {
                panic!("oversized payload must not reach the stream");
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let huge = vec![0u8; MAX_PAYLOAD as usize + 1];
        assert!(matches!(
            write_frame(&mut NoWrite, &huge).unwrap_err(),
            WireError::Oversized { .. }
        ));

        // Reader side rejects the length prefix before allocating.
        let mut frame = Vec::new();
        frame.extend_from_slice(MAGIC);
        frame.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        frame.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut Cursor::new(frame)).unwrap_err(),
            WireError::Oversized { declared: u64::MAX }
        );
    }

    #[test]
    fn recoverability_classification() {
        assert!(is_recoverable(&WireError::BadChecksum));
        assert!(is_recoverable(&WireError::StaleVersion { got: 9 }));
        assert!(is_recoverable(&WireError::Malformed { what: "x".into() }));
        assert!(!is_recoverable(&WireError::Truncated));
        assert!(!is_recoverable(&WireError::BadMagic));
        assert!(!is_recoverable(&WireError::Oversized { declared: 0 }));
        assert!(!is_recoverable(&WireError::Io { what: "x".into() }));
    }

    #[test]
    fn primitives_round_trip_bit_identically() {
        let mut e = Encoder::new();
        e.u8(7);
        e.bool(true);
        e.u16(65535);
        e.u32(123456);
        e.u64(u64::MAX - 1);
        e.f64(-0.0);
        e.f64(1.625e-13);
        e.string("driver/stage #3 — μm");
        e.u64_slice(&[1, 2, 3]);
        let bytes = e.0;
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8(), Some(7));
        assert_eq!(d.bool(), Some(true));
        assert_eq!(d.u16(), Some(65535));
        assert_eq!(d.u32(), Some(123456));
        assert_eq!(d.u64(), Some(u64::MAX - 1));
        assert_eq!(d.f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(d.f64(), Some(1.625e-13));
        assert_eq!(d.string().as_deref(), Some("driver/stage #3 — μm"));
        assert_eq!(d.u64_vec(), Some(vec![1, 2, 3]));
        assert!(d.done());
        // Short buffers: typed None, never a panic or over-read.
        let mut d = Decoder::new(&bytes[..3]);
        let _ = d.u8();
        let _ = d.bool();
        assert_eq!(d.u16(), None);
        // A corrupt string length larger than the buffer is caught before
        // allocation.
        let mut e = Encoder::new();
        e.u64(u64::MAX);
        let bytes = e.0;
        assert_eq!(Decoder::new(&bytes).string(), None);
        assert_eq!(Decoder::new(&bytes).u64_vec(), None);
    }
}
