//! The client library: a [`ServiceClient`] that mirrors the in-process
//! `AnalysisSession` workflow over a service connection.
//!
//! The API intentionally shadows the facade's `StageBuilder` / `StageHandle`
//! shape, so porting an in-process analysis to remote mode is a handful of
//! renames:
//!
//! ```text
//! engine.session()                  ->  ServiceClient::connect(addr)?
//! Stage::builder(cell, load)        ->  RemoteStage::builder(cell, load)
//! session.submit(stage.build()?)?   ->  client.submit(stage.build())?
//! session.next_report()             ->  client.next_report()?
//! session.wait_all()                ->  client.wait_all()?
//! ```
//!
//! Loads are described by topology ([`RemoteLoad`]) rather than by trait
//! object — the server rebuilds the same facade load models on its side, so
//! a remote analysis is bit-identical to the in-process one.

use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

use rlc_ceff_suite::interconnect::{CoupledBus, RlcLine, RlcTree};
use rlc_ceff_suite::{AggressorSpec, AggressorSwitching, SessionOptions};

use crate::error::ServiceError;
use crate::protocol::{
    Request, Response, WireAggressor, WireBackend, WireBranch, WireCellRef, WireDiagnostic,
    WireInput, WireLine, WireLoad, WireReport, WireSessionOptions, WireStage,
};
use crate::server::wire_options;
use crate::wire::{read_frame, write_frame};

/// The scalar results of one remotely analyzed stage (the wire form of the
/// facade's `StageReport`).
pub type RemoteReport = WireReport;

/// One static-audit finding from a remote lint pass (the wire form of the
/// facade's `Diagnostic`).
pub type RemoteDiagnostic = WireDiagnostic;

/// A handle on a remotely submitted stage. Indices count accepted
/// submissions on this connection, exactly like `StageHandle::index()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RemoteHandle {
    index: u64,
}

impl RemoteHandle {
    /// The submission index of this stage.
    pub fn index(&self) -> u64 {
        self.index
    }
}

/// The driver cell of a remote stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteCell {
    wire: WireCellRef,
}

impl RemoteCell {
    /// A cell the server characterizes (or loads from its shared cache) at
    /// the given drive size.
    pub fn characterized(size: f64) -> RemoteCell {
        RemoteCell {
            wire: WireCellRef::Characterize { size },
        }
    }

    /// A synthetic, characterization-free cell — deterministic and cheap,
    /// built from the same closed-form tables the test fixtures use.
    pub fn synthetic(size: f64, on_resistance: f64) -> RemoteCell {
        RemoteCell {
            wire: WireCellRef::Synthetic {
                size,
                on_resistance,
            },
        }
    }
}

/// The load topology of a remote stage, mirroring the facade load models.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteLoad {
    wire: WireLoad,
}

fn wire_line(line: &RlcLine) -> WireLine {
    WireLine {
        resistance: line.resistance(),
        inductance: line.inductance(),
        capacitance: line.capacitance(),
        length: line.length(),
    }
}

fn wire_aggressor(spec: &AggressorSpec) -> WireAggressor {
    WireAggressor {
        switching: match spec.switching {
            AggressorSwitching::Quiet => 0,
            AggressorSwitching::SameDirection => 1,
            AggressorSwitching::OppositeDirection => 2,
        },
        slew: spec.slew,
        delay: spec.delay,
        amplitude: spec.amplitude,
    }
}

impl RemoteLoad {
    /// A lumped capacitor (`LumpedCapLoad`).
    pub fn lumped(c: f64) -> RemoteLoad {
        RemoteLoad {
            wire: WireLoad::Lumped { c },
        }
    }

    /// A reduced-order pi load (`PiModelLoad`).
    pub fn pi(c_near: f64, resistance: f64, c_far: f64) -> RemoteLoad {
        RemoteLoad {
            wire: WireLoad::Pi {
                c_near,
                resistance,
                c_far,
            },
        }
    }

    /// A distributed RLC line with a far-end capacitor
    /// (`DistributedRlcLoad`).
    pub fn line(line: &RlcLine, c_load: f64) -> RemoteLoad {
        RemoteLoad {
            wire: WireLoad::Line {
                line: wire_line(line),
                c_load,
            },
        }
    }

    /// An RLC routing tree (`RlcTreeLoad`), carried branch by branch.
    /// Parents always precede children in an `RlcTree`, so the wire form
    /// reconstructs identically.
    pub fn from_tree(tree: &RlcTree) -> RemoteLoad {
        let branches = tree
            .branches()
            .map(|(_, branch)| WireBranch {
                parent: branch.parent().map(|p| p.index() as u64),
                line: wire_line(branch.line()),
                sink: branch.sink().map(|sink| (sink.name.clone(), sink.c_load)),
            })
            .collect();
        RemoteLoad {
            wire: WireLoad::Tree { branches },
        }
    }

    /// A capacitively and inductively coupled two-line bus
    /// (`CoupledBusLoad`) with the given aggressor drive.
    pub fn bus(bus: &CoupledBus, aggressor: AggressorSpec) -> RemoteLoad {
        RemoteLoad {
            wire: WireLoad::Bus {
                victim: wire_line(bus.victim()),
                aggressor: wire_line(bus.aggressor()),
                coupling_capacitance: bus.coupling_capacitance(),
                mutual_inductance: bus.mutual_inductance(),
                victim_load: bus.victim_load(),
                aggressor_load: bus.aggressor_load(),
                drive: wire_aggressor(&aggressor),
            },
        }
    }
}

/// A fully described remote stage, ready to submit.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteStage {
    pub(crate) wire: WireStage,
}

impl RemoteStage {
    /// The raw wire message this stage submits — for tests and tools that
    /// speak the protocol directly.
    pub fn into_wire(self) -> WireStage {
        self.wire
    }

    /// Starts describing a stage, mirroring `Stage::builder`.
    pub fn builder(cell: RemoteCell, load: RemoteLoad) -> RemoteStageBuilder {
        RemoteStageBuilder {
            wire: WireStage {
                label: String::new(),
                cell: cell.wire,
                load: load.wire,
                input: WireInput::Event {
                    slew: 0.0,
                    delay: None,
                },
                after: Vec::new(),
                backend: WireBackend::Default,
            },
        }
    }
}

/// The remote mirror of the facade's `StageBuilder`. Validation happens
/// server-side at submit time, so `build` is infallible here.
#[derive(Debug, Clone)]
pub struct RemoteStageBuilder {
    wire: WireStage,
}

impl RemoteStageBuilder {
    /// Names the stage (used in error messages and reports).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.wire.label = label.into();
        self
    }

    /// Drives the stage with an ideal ramp of the given transition time.
    pub fn input_slew(mut self, slew: f64) -> Self {
        let delay = match self.wire.input {
            WireInput::Event { delay, .. } => delay,
            _ => None,
        };
        self.wire.input = WireInput::Event { slew, delay };
        self
    }

    /// Absolute start time of the input ramp (seconds).
    pub fn input_delay(mut self, delay: f64) -> Self {
        let slew = match self.wire.input {
            WireInput::Event { slew, .. } => slew,
            _ => 0.0,
        };
        self.wire.input = WireInput::Event {
            slew,
            delay: Some(delay),
        };
        self
    }

    /// Chains this stage's input to the producer's far-end waveform.
    pub fn input_from(mut self, producer: RemoteHandle) -> Self {
        self.wire.input = WireInput::FromFarEnd {
            producer: producer.index,
        };
        self
    }

    /// Chains this stage's input to a named sink of the producer's load.
    pub fn input_from_sink(mut self, producer: RemoteHandle, sink: impl Into<String>) -> Self {
        self.wire.input = WireInput::FromSink {
            producer: producer.index,
            sink: sink.into(),
        };
        self
    }

    /// Adds an ordering-only dependency.
    pub fn after(mut self, upstream: RemoteHandle) -> Self {
        self.wire.after.push(upstream.index);
        self
    }

    /// Forces the analytic backend.
    pub fn analytic(mut self) -> Self {
        self.wire.backend = WireBackend::Analytic;
        self
    }

    /// Forces the golden transient-simulation backend.
    pub fn spice(mut self) -> Self {
        self.wire.backend = WireBackend::Spice;
        self
    }

    /// Finishes the description. The server validates on submit.
    pub fn build(self) -> RemoteStage {
        RemoteStage { wire: self.wire }
    }
}

/// A connection to a timing service — either a single [`crate::Server`] or
/// the client-facing side of a [`crate::ShardServer`] fleet; the protocol
/// is identical.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    submitted: u64,
    collected: BTreeMap<u64, Result<RemoteReport, ServiceError>>,
}

impl ServiceClient {
    /// Connects with default session options.
    ///
    /// # Errors
    /// Transport failures and typed server rejections.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServiceClient, ServiceError> {
        ServiceClient::connect_wire(addr, WireSessionOptions::defaults())
    }

    /// Connects with explicit session options. The deadline is carried as
    /// nanoseconds and starts ticking when the server opens the session;
    /// far-end fidelity options are not carried (the server default
    /// applies).
    ///
    /// # Errors
    /// Transport failures and typed server rejections.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        options: &SessionOptions,
    ) -> Result<ServiceClient, ServiceError> {
        ServiceClient::connect_wire(addr, wire_options(options))
    }

    fn connect_wire(
        addr: impl ToSocketAddrs,
        options: WireSessionOptions,
    ) -> Result<ServiceClient, ServiceError> {
        let stream = TcpStream::connect(addr).map_err(crate::wire::WireError::from)?;
        let _ = stream.set_nodelay(true);
        let mut client = ServiceClient {
            reader: BufReader::new(stream),
            submitted: 0,
            collected: BTreeMap::new(),
        };
        match client.roundtrip(&Request::Hello { options })? {
            Response::HelloAck => Ok(client),
            other => Err(unexpected(other)),
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, ServiceError> {
        write_frame(self.reader.get_mut(), &request.encode())?;
        match read_frame(&mut self.reader)? {
            Some(payload) => Ok(Response::decode(&payload)?),
            None => Err(ServiceError::Wire(crate::wire::WireError::Truncated)),
        }
    }

    /// Submits a stage for analysis.
    ///
    /// # Errors
    /// Typed rejections (invalid stage, unknown sink, dependency cycle, …)
    /// carry their stable response code; no handle is allocated for them.
    pub fn submit(&mut self, stage: RemoteStage) -> Result<RemoteHandle, ServiceError> {
        match self.roundtrip(&Request::Submit(Box::new(stage.wire)))? {
            Response::Submitted { index } => {
                debug_assert_eq!(index, self.submitted);
                self.submitted = index + 1;
                Ok(RemoteHandle { index })
            }
            Response::Error { code, message } => Err(ServiceError::remote(code, message)),
            other => Err(unexpected(other)),
        }
    }

    /// Blocks for the next completed stage, in completion order. Returns
    /// `Ok(None)` once every submitted stage has been reported.
    ///
    /// # Errors
    /// Transport failures; per-stage failures arrive as the `Err` arm of
    /// the per-stage result, not as a transport error.
    #[allow(clippy::type_complexity)]
    pub fn next_report(
        &mut self,
    ) -> Result<Option<(RemoteHandle, Result<RemoteReport, ServiceError>)>, ServiceError> {
        match self.roundtrip(&Request::NextReport)? {
            Response::Report { index, outcome } => {
                let outcome =
                    outcome.map_err(|(code, message)| ServiceError::remote(code, message));
                self.collected.insert(index, outcome.clone());
                Ok(Some((RemoteHandle { index }, outcome)))
            }
            Response::NoPending => Ok(None),
            Response::Error { code, message } => Err(ServiceError::remote(code, message)),
            other => Err(unexpected(other)),
        }
    }

    /// Waits for every outstanding stage and returns all per-stage results
    /// in submission order (index 0 first) — the remote analogue of
    /// `AnalysisSession::wait_all`.
    ///
    /// # Errors
    /// Transport failures only; per-stage failures are the `Err` arms of
    /// the returned vector.
    #[allow(clippy::type_complexity)]
    pub fn wait_all(&mut self) -> Result<Vec<Result<RemoteReport, ServiceError>>, ServiceError> {
        write_frame(self.reader.get_mut(), &Request::WaitAll.encode())?;
        loop {
            let payload = match read_frame(&mut self.reader)? {
                Some(payload) => payload,
                None => return Err(ServiceError::Wire(crate::wire::WireError::Truncated)),
            };
            match Response::decode(&payload)? {
                // Servers batch the drain into one `Reports` frame; the
                // per-stage `Report` arm stays for older peers and for
                // coordinators that stream as shards finish.
                Response::Reports { reports } => {
                    for (index, outcome) in reports {
                        self.collected.insert(
                            index,
                            outcome.map_err(|(code, message)| ServiceError::remote(code, message)),
                        );
                    }
                }
                Response::Report { index, outcome } => {
                    self.collected.insert(
                        index,
                        outcome.map_err(|(code, message)| ServiceError::remote(code, message)),
                    );
                }
                Response::Done { .. } => break,
                Response::Error { code, message } => {
                    return Err(ServiceError::remote(code, message))
                }
                other => return Err(unexpected(other)),
            }
        }
        let mut results = Vec::with_capacity(self.submitted as usize);
        for index in 0..self.submitted {
            results.push(self.collected.get(&index).cloned().ok_or_else(|| {
                ServiceError::Unexpected {
                    what: format!("stage #{index} was never reported"),
                }
            })?);
        }
        Ok(results)
    }

    /// The result of an already-reported stage, if any.
    pub fn report_for(&self, handle: RemoteHandle) -> Option<&Result<RemoteReport, ServiceError>> {
        self.collected.get(&handle.index)
    }

    /// Runs the server's static circuit audit over a stage description
    /// **without** submitting it for analysis — the remote analogue of the
    /// facade's `TimingEngine::lint`. Nothing is simulated, no submission
    /// index is consumed, and the findings are bit-identical to the
    /// in-process audit of the same stage.
    ///
    /// # Errors
    /// Typed rejections (a stage description the server cannot rebuild)
    /// and transport failures.
    pub fn lint(&mut self, stage: RemoteStage) -> Result<Vec<RemoteDiagnostic>, ServiceError> {
        match self.roundtrip(&Request::Lint(Box::new(stage.wire)))? {
            Response::LintReport { diagnostics } => Ok(diagnostics),
            Response::Error { code, message } => Err(ServiceError::remote(code, message)),
            other => Err(unexpected(other)),
        }
    }

    /// Cancels everything not yet running server-side.
    ///
    /// # Errors
    /// Transport failures.
    pub fn cancel(&mut self) -> Result<(), ServiceError> {
        match self.roundtrip(&Request::Cancel)? {
            Response::CancelAck => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// A liveness round trip.
    ///
    /// # Errors
    /// Transport failures.
    pub fn ping(&mut self) -> Result<(), ServiceError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Ends the conversation cleanly.
    ///
    /// # Errors
    /// Transport failures.
    pub fn close(mut self) -> Result<(), ServiceError> {
        match self.roundtrip(&Request::Close)? {
            Response::Bye => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(response: Response) -> ServiceError {
    ServiceError::Unexpected {
        what: format!("{response:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_loads_mirror_the_facade_topologies() {
        let line = RlcLine::new(14.5e3, 1.028e-6, 2.2e-10, 5e-3);
        let RemoteLoad {
            wire: WireLoad::Line { line: w, c_load },
        } = RemoteLoad::line(&line, 10e-15)
        else {
            panic!("expected a line load");
        };
        assert_eq!(w.resistance, line.resistance());
        assert_eq!(w.length, line.length());
        assert_eq!(c_load, 10e-15);

        let mut tree = RlcTree::new();
        let trunk = tree.add_branch(None, line);
        let branch = tree.add_branch(Some(trunk), line);
        tree.set_sink(branch, "rx", 15e-15);
        let RemoteLoad {
            wire: WireLoad::Tree { branches },
        } = RemoteLoad::from_tree(&tree)
        else {
            panic!("expected a tree load");
        };
        assert_eq!(branches.len(), 2);
        assert_eq!(branches[0].parent, None);
        assert_eq!(branches[1].parent, Some(0));
        assert_eq!(branches[1].sink, Some(("rx".into(), 15e-15)));

        let bus = CoupledBus::symmetric(line, 6.6e-11, 2.056e-7, 10e-15);
        let spec = AggressorSpec::new(AggressorSwitching::OppositeDirection, 100e-12, 50e-12, 1.8)
            .unwrap();
        let RemoteLoad {
            wire:
                WireLoad::Bus {
                    coupling_capacitance,
                    drive,
                    ..
                },
        } = RemoteLoad::bus(&bus, spec)
        else {
            panic!("expected a bus load");
        };
        assert_eq!(coupling_capacitance, 6.6e-11);
        assert_eq!(drive.switching, 2);
    }

    #[test]
    fn builder_mirrors_the_stage_builder_shape() {
        let producer = RemoteHandle { index: 3 };
        let stage =
            RemoteStage::builder(RemoteCell::synthetic(75.0, 70.0), RemoteLoad::lumped(1e-13))
                .label("capture")
                .input_from_sink(producer, "rx_far")
                .after(RemoteHandle { index: 1 })
                .analytic()
                .build();
        assert_eq!(stage.wire.label, "capture");
        assert_eq!(
            stage.wire.input,
            WireInput::FromSink {
                producer: 3,
                sink: "rx_far".into()
            }
        );
        assert_eq!(stage.wire.after, vec![1]);
        assert_eq!(stage.wire.backend, WireBackend::Analytic);
        // Delay and slew compose regardless of call order.
        let stage =
            RemoteStage::builder(RemoteCell::characterized(50.0), RemoteLoad::lumped(1e-13))
                .input_delay(20e-12)
                .input_slew(80e-12)
                .build();
        assert_eq!(
            stage.wire.input,
            WireInput::Event {
                slew: 80e-12,
                delay: Some(20e-12)
            }
        );
    }
}
