//! The shard coordinator: N worker processes behind one client-facing
//! listener.
//!
//! The coordinator speaks the same wire protocol on both sides. Toward the
//! client it impersonates a single [`crate::server::Server`]; behind the
//! scenes it routes every accepted stage to one of N worker *processes*
//! (each a plain `Server` with its own `AnalysisSession` per coordinator
//! connection), multiplexes their completion streams back into one, and
//! handles worker death by transparently resubmitting independent stages.
//! Dependent stages whose upstream waveforms died with the worker are
//! normally failed with a typed [`crate::error::code::SHARD_LOST`] outcome —
//! unless the fleet shares a stage-result store (`result_cache_dir`), in
//! which case the coordinator replants the *whole producer chain* on a
//! surviving shard: the already-finished links replay from the shared cache
//! (bit-identical, no re-simulation), regrowing the waveforms the unfinished
//! stages need.
//!
//! Routing is affinity-based: a stage that consumes another stage's output
//! (`input_from` / `input_from_sink`) **must** land on its producer's shard,
//! because the producer's waveform only exists in that worker's session.
//! Independent stages are hashed by their topology key across the live
//! shards. Ordering-only `after` edges crossing shards are handled by the
//! coordinator itself: the dependent is held back until the foreign
//! upstream reports, then the edge is dropped (success) or the dependent is
//! poisoned (failure) — exactly the semantics a single `AnalysisSession`
//! applies.
//!
//! All workers share one on-disk characterization cache directory, so a
//! cell characterized by any worker warm-starts every other.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::error::code;
use crate::protocol::{Request, Response, WireInput, WireOutcome, WireSessionOptions, WireStage};
use crate::server::Server;
use crate::wire::{read_frame, write_frame, WireError};

/// Environment variable that turns a process into a shard worker: its value
/// is the address the worker's [`Server`] binds.
pub const WORKER_LISTEN_ENV: &str = "RLC_SERVICE_WORKER_LISTEN";
/// Environment variable carrying the shared characterization cache
/// directory to a shard worker.
pub const WORKER_CACHE_ENV: &str = "RLC_SERVICE_WORKER_CACHE";
/// Environment variable carrying the shared stage-result cache directory
/// to a shard worker.
pub const WORKER_RESULT_CACHE_ENV: &str = "RLC_SERVICE_WORKER_RESULT_CACHE";
/// Line prefix a worker prints on stdout once its listener is bound.
pub const READY_PREFIX: &str = "RLC_SERVICE_WORKER_READY ";

/// Worker-mode entry point. Call this **first** in the `main` of any binary
/// that spawns a [`WorkerPool`] from its own executable (benches and
/// examples cannot reference the `rlc-serviced` binary path, so they
/// re-invoke `std::env::current_exe()` with [`WORKER_LISTEN_ENV`] set).
///
/// When the environment marks this process as a worker, this binds a
/// [`Server`], announces the bound address on stdout, and serves until the
/// parent closes the worker's stdin (or kills it). Returns `false` (without
/// side effects) in a normal process.
pub fn maybe_run_worker_from_env() -> bool {
    let Some(listen) = std::env::var_os(WORKER_LISTEN_ENV) else {
        return false;
    };
    let listen = listen.to_string_lossy().into_owned();
    let cache = std::env::var_os(WORKER_CACHE_ENV).map(PathBuf::from);
    let result_cache = std::env::var_os(WORKER_RESULT_CACHE_ENV).map(PathBuf::from);
    let server = Server::bind(&listen, cache.as_deref(), result_cache.as_deref())
        .expect("shard worker failed to bind");
    println!("{READY_PREFIX}{}", server.local_addr());
    let _ = std::io::stdout().flush();
    // The parent holds our stdin open for our whole life; EOF means the
    // parent is gone and the worker must not outlive it.
    std::thread::spawn(|| {
        let mut sink = [0u8; 256];
        let mut stdin = std::io::stdin();
        loop {
            match stdin.read(&mut sink) {
                Ok(0) | Err(_) => std::process::exit(0),
                Ok(_) => {}
            }
        }
    });
    server.serve();
    true
}

struct Worker {
    child: Option<Child>,
    addr: SocketAddr,
}

/// A fleet of shard worker processes, each running a [`Server`] on an
/// ephemeral localhost port. Dropping the pool kills every worker.
pub struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// Spawns `shards` worker processes from `exe` (any binary whose `main`
    /// starts with [`maybe_run_worker_from_env`]), all sharing `cache_dir`
    /// (characterization) and `result_cache_dir` (stage results).
    ///
    /// # Errors
    /// Spawn failures, and workers that exit before announcing an address.
    pub fn spawn(
        exe: &Path,
        shards: usize,
        cache_dir: Option<&Path>,
        result_cache_dir: Option<&Path>,
    ) -> std::io::Result<Self> {
        let mut workers = Vec::new();
        for shard in 0..shards.max(1) {
            let mut command = Command::new(exe);
            command
                .env(WORKER_LISTEN_ENV, "127.0.0.1:0")
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit());
            if let Some(dir) = cache_dir {
                command.env(WORKER_CACHE_ENV, dir);
            }
            if let Some(dir) = result_cache_dir {
                command.env(WORKER_RESULT_CACHE_ENV, dir);
            }
            let mut child = command.spawn()?;
            let stdout = child.stdout.take().expect("piped worker stdout");
            let mut lines = BufReader::new(stdout).lines();
            let addr = loop {
                match lines.next() {
                    Some(Ok(line)) => {
                        if let Some(rest) = line.strip_prefix(READY_PREFIX) {
                            break rest.trim().parse::<SocketAddr>().map_err(|e| {
                                std::io::Error::other(format!(
                                    "shard {shard} announced an unparseable address: {e}"
                                ))
                            })?;
                        }
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(std::io::Error::other(format!(
                            "shard {shard} exited before announcing its address"
                        )));
                    }
                }
            };
            // Keep draining the worker's stdout so it can never block on a
            // full pipe.
            std::thread::spawn(move || for _line in lines {});
            workers.push(Worker {
                child: Some(child),
                addr,
            });
        }
        Ok(WorkerPool { workers })
    }

    /// The listen addresses of the workers, in shard order.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.workers.iter().map(|w| w.addr).collect()
    }

    /// Kills one worker process — the failure-injection hook the
    /// shard-death tests use.
    pub fn kill(&mut self, shard: usize) {
        if let Some(mut child) = self.workers[shard].child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            if let Some(mut child) = worker.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// The client-facing front of a worker fleet: accepts protocol connections
/// and runs one [`Coordinator`] per client.
pub struct ShardServer {
    listener: TcpListener,
    pool: Arc<Mutex<WorkerPool>>,
    addrs: Vec<SocketAddr>,
    shared_result_cache: bool,
}

impl ShardServer {
    /// Spawns `shards` workers from `exe` and binds the client listener.
    /// With `result_cache_dir` set, the fleet shares one stage-result store,
    /// which also upgrades shard-death recovery: dependent chains are
    /// replanted on survivors (replaying finished links from the store)
    /// instead of being failed with `SHARD_LOST`.
    ///
    /// # Errors
    /// Bind and worker-spawn failures.
    pub fn spawn(
        listen: &str,
        shards: usize,
        cache_dir: Option<&Path>,
        result_cache_dir: Option<&Path>,
        exe: &Path,
    ) -> std::io::Result<Self> {
        let pool = WorkerPool::spawn(exe, shards, cache_dir, result_cache_dir)?;
        let addrs = pool.addrs();
        Ok(ShardServer {
            listener: TcpListener::bind(listen)?,
            pool: Arc::new(Mutex::new(pool)),
            addrs,
            shared_result_cache: result_cache_dir.is_some(),
        })
    }

    /// The client-facing address.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener address")
    }

    /// A handle on the worker pool — the failure-injection hook tests use
    /// to kill shards mid-run.
    pub fn pool(&self) -> Arc<Mutex<WorkerPool>> {
        self.pool.clone()
    }

    /// Accepts clients forever, one coordinator thread per connection.
    pub fn serve(&self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let addrs = self.addrs.clone();
                    let shared = self.shared_result_cache;
                    std::thread::spawn(move || Coordinator::new(addrs, shared).run(stream));
                }
                Err(_) => continue,
            }
        }
    }

    /// Moves the accept loop onto a background thread; returns the
    /// client-facing address and the pool handle.
    pub fn serve_in_background(self) -> (SocketAddr, Arc<Mutex<WorkerPool>>) {
        let addr = self.local_addr();
        let pool = self.pool.clone();
        std::thread::spawn(move || self.serve());
        (addr, pool)
    }
}

/// One coordinator-side connection to a worker. `local_to_global` maps the
/// worker session's stage indices (per this connection) back to the
/// client's global index space.
struct ShardConn {
    stream: Option<BufReader<TcpStream>>,
    local_to_global: Vec<u64>,
}

impl ShardConn {
    fn alive(&self) -> bool {
        self.stream.is_some()
    }

    /// Strict request/response round trip; any failure kills the
    /// connection (the caller then runs shard-death recovery).
    fn roundtrip(&mut self, request: &Request) -> Result<Response, WireError> {
        let result = (|| {
            let reader = self.stream.as_mut().ok_or_else(|| WireError::Io {
                what: "shard connection already closed".into(),
            })?;
            write_frame(reader.get_mut(), &request.encode())?;
            match read_frame(reader)? {
                Some(payload) => Response::decode(&payload),
                None => Err(WireError::Truncated),
            }
        })();
        if result.is_err() {
            self.stream = None;
        }
        result
    }
}

/// What became of one placement attempt.
enum Place {
    /// Accepted by a worker; the stage is in flight.
    Submitted,
    /// A worker synchronously rejected the submission.
    Rejected(u16, String),
    /// Dependencies are not resolvable yet; retry after the next report.
    Deferred,
    /// The coordinator recorded a failure outcome itself (dead dependency
    /// chain, no live shards, cancellation).
    Poisoned,
}

/// Everything the coordinator tracks about one accepted stage.
struct StageState {
    wire: WireStage,
    shard: Option<usize>,
    local: Option<u64>,
    done: bool,
    failed: bool,
}

/// The per-client brain: owns one connection to every worker and the whole
/// global stage table for this client session.
struct Coordinator {
    addrs: Vec<SocketAddr>,
    shards: Vec<ShardConn>,
    stages: Vec<StageState>,
    deferred: Vec<u64>,
    completed: VecDeque<(u64, WireOutcome)>,
    done_count: u64,
    /// Whether every worker shares one stage-result store. When true, a
    /// dead shard's dependent chains are replanted on survivors (finished
    /// links replay from the store) instead of failing with `SHARD_LOST`.
    shared_result_cache: bool,
}

impl Coordinator {
    fn new(addrs: Vec<SocketAddr>, shared_result_cache: bool) -> Self {
        Coordinator {
            addrs,
            shards: Vec::new(),
            stages: Vec::new(),
            deferred: Vec::new(),
            completed: VecDeque::new(),
            done_count: 0,
            shared_result_cache,
        }
    }

    /// The client-facing request loop (mirrors
    /// `server::serve_connection`, with stage handling delegated to the
    /// worker fleet).
    fn run(mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let mut reader = BufReader::new(stream);
        loop {
            let payload = match read_frame(&mut reader) {
                Ok(Some(payload)) => payload,
                Ok(None) => return,
                Err(e) if crate::wire::is_recoverable(&e) => {
                    let response = Response::Error {
                        code: crate::error::wire_code(&e),
                        message: e.to_string(),
                    };
                    if respond(&mut reader, &response).is_err() {
                        return;
                    }
                    continue;
                }
                Err(e @ WireError::Oversized { .. }) => {
                    let _ = respond(
                        &mut reader,
                        &Response::Error {
                            code: crate::error::wire_code(&e),
                            message: e.to_string(),
                        },
                    );
                    return;
                }
                Err(_) => return,
            };
            let request = match Request::decode(&payload) {
                Ok(request) => request,
                Err(e) => {
                    let response = Response::Error {
                        code: crate::error::wire_code(&e),
                        message: e.to_string(),
                    };
                    if respond(&mut reader, &response).is_err() {
                        return;
                    }
                    continue;
                }
            };
            let done = matches!(request, Request::Close);
            for response in self.handle(request) {
                if respond(&mut reader, &response).is_err() {
                    return;
                }
            }
            if done {
                return;
            }
        }
    }

    fn handle(&mut self, request: Request) -> Vec<Response> {
        match request {
            Request::Hello { options } => vec![self.hello(&options)],
            Request::Submit(wire_stage) => vec![self.submit(*wire_stage)],
            Request::NextReport => vec![self.next_report()],
            Request::PollReport => vec![self.poll_report()],
            Request::WaitAll => self.wait_all(),
            Request::Cancel => vec![self.cancel()],
            Request::Ping => vec![Response::Pong],
            Request::Close => vec![Response::Bye],
            Request::Lint(wire_stage) => vec![self.lint(*wire_stage)],
        }
    }

    /// Forwards a lint audit to the first live worker. The audit is
    /// stateless server-side (no session state, no handles), so every shard
    /// produces the same answer and no routing is needed.
    fn lint(&mut self, wire: WireStage) -> Response {
        if self.shards.is_empty() {
            return Response::Error {
                code: code::PROTOCOL,
                message: "no open session: send Hello first".into(),
            };
        }
        for s in 0..self.shards.len() {
            if !self.shards[s].alive() {
                continue;
            }
            match self.shards[s].roundtrip(&Request::Lint(Box::new(wire.clone()))) {
                Ok(response @ (Response::LintReport { .. } | Response::Error { .. })) => {
                    return response
                }
                Ok(_) | Err(_) => {
                    self.shards[s].stream = None;
                    self.shard_died(s);
                }
            }
        }
        Response::Error {
            code: code::SHARD_LOST,
            message: "no shard workers are reachable".into(),
        }
    }

    /// Opens a connection (and a worker-side session) on every shard.
    fn hello(&mut self, options: &WireSessionOptions) -> Response {
        if !self.shards.is_empty() {
            return Response::Error {
                code: code::PROTOCOL,
                message: "a session is already open on this connection".into(),
            };
        }
        for &addr in &self.addrs {
            let stream = TcpStream::connect(addr).ok().map(BufReader::new);
            let mut conn = ShardConn {
                stream,
                local_to_global: Vec::new(),
            };
            if conn.alive() {
                let _ = conn.stream.as_mut().map(|r| r.get_mut().set_nodelay(true));
                match conn.roundtrip(&Request::Hello { options: *options }) {
                    Ok(Response::HelloAck) => {}
                    _ => conn.stream = None,
                }
            }
            self.shards.push(conn);
        }
        if self.shards.iter().any(ShardConn::alive) {
            Response::HelloAck
        } else {
            Response::Error {
                code: code::SHARD_LOST,
                message: "no shard workers are reachable".into(),
            }
        }
    }

    fn submit(&mut self, wire: WireStage) -> Response {
        if self.shards.is_empty() {
            return Response::Error {
                code: code::PROTOCOL,
                message: "no open session: send Hello first".into(),
            };
        }
        let global = self.stages.len() as u64;
        for dependency in wire.dependencies() {
            if dependency >= global {
                return Response::Error {
                    code: code::INVALID_DEPENDENCY,
                    message: format!(
                        "stage '{}' references handle #{dependency}, but only {global} stages \
                         have been accepted",
                        wire.label
                    ),
                };
            }
        }
        self.stages.push(StageState {
            wire,
            shard: None,
            local: None,
            done: false,
            failed: false,
        });
        match self.try_place(global) {
            Place::Submitted | Place::Poisoned => Response::Submitted { index: global },
            Place::Deferred => {
                self.deferred.push(global);
                Response::Submitted { index: global }
            }
            Place::Rejected(code, message) => {
                // Mirror the single-server contract: a rejected submission
                // allocates no handle.
                self.stages.pop();
                Response::Error { code, message }
            }
        }
    }

    /// Tries to route stage `global` to a worker. See the module docs for
    /// the routing rules.
    fn try_place(&mut self, global: u64) -> Place {
        let g = global as usize;
        let mut target: Option<usize> = None;

        // The waveform producer pins the shard.
        if let Some(p) = self.stages[g].wire.input.producer() {
            let producer = &self.stages[p as usize];
            if producer.done && producer.failed {
                return self.poison_upstream(global, p);
            }
            match producer.shard {
                Some(s) if self.shards[s].alive() => target = Some(s),
                Some(s) => {
                    let message = format!(
                        "stage '{}' depends on '{}', whose shard {s} died",
                        self.stages[g].wire.label, self.stages[p as usize].wire.label
                    );
                    return self.poison(global, code::SHARD_LOST, message);
                }
                // The producer is itself deferred (or was poisoned without
                // ever being placed — caught above once it reports).
                None => return Place::Deferred,
            }
        }

        // Ordering edges: forward same-shard edges as local handles, drop
        // satisfied ones, and hold the stage back for foreign ones.
        let mut forward_after: Vec<u64> = Vec::new();
        for i in 0..self.stages[g].wire.after.len() {
            let a = self.stages[g].wire.after[i];
            let upstream = &self.stages[a as usize];
            if upstream.done {
                if upstream.failed {
                    return self.poison_upstream(global, a);
                }
                continue;
            }
            match upstream.shard {
                Some(s) if self.shards[s].alive() => match target {
                    None => {
                        target = Some(s);
                        forward_after.push(a);
                    }
                    Some(t) if t == s => forward_after.push(a),
                    // Cross-shard ordering: wait for the foreign upstream
                    // to report, then drop or poison the edge.
                    Some(_) => return Place::Deferred,
                },
                // The upstream's shard died: its ShardLost (or resubmitted
                // success) outcome will arrive; decide then.
                Some(_) => return Place::Deferred,
                None => return Place::Deferred,
            }
        }

        let target = match target {
            Some(t) => t,
            None => match self.hash_shard(global) {
                Some(t) => t,
                None => {
                    let message = format!(
                        "no live shard left to run stage '{}'",
                        self.stages[g].wire.label
                    );
                    return self.poison(global, code::SHARD_LOST, message);
                }
            },
        };
        self.send_submit(global, target, &forward_after)
    }

    /// Forwards stage `global` to worker `shard`, rewriting global handles
    /// into the worker session's local index space.
    fn send_submit(&mut self, global: u64, shard: usize, forward_after: &[u64]) -> Place {
        let g = global as usize;
        let mut wire = self.stages[g].wire.clone();
        match &mut wire.input {
            WireInput::FromFarEnd { producer } | WireInput::FromSink { producer, .. } => {
                *producer = self.stages[*producer as usize]
                    .local
                    .expect("producer placed on this shard");
            }
            WireInput::Event { .. } => {}
        }
        wire.after = forward_after
            .iter()
            .map(|&a| {
                self.stages[a as usize]
                    .local
                    .expect("after-dependency placed on this shard")
            })
            .collect();
        match self.shards[shard].roundtrip(&Request::Submit(Box::new(wire))) {
            Ok(Response::Submitted { index }) => {
                let conn = &mut self.shards[shard];
                debug_assert_eq!(index as usize, conn.local_to_global.len());
                conn.local_to_global.push(global);
                self.stages[g].shard = Some(shard);
                self.stages[g].local = Some(index);
                Place::Submitted
            }
            Ok(Response::Error { code, message }) => Place::Rejected(code, message),
            Ok(_) | Err(_) => {
                self.shards[shard].stream = None;
                self.shard_died(shard);
                // The dead-shard sweep left this stage unplaced; route it
                // again among the survivors.
                self.try_place(global)
            }
        }
    }

    /// The hash route for stages with no placement constraint.
    fn hash_shard(&self, global: u64) -> Option<usize> {
        let live: Vec<usize> = (0..self.shards.len())
            .filter(|&s| self.shards[s].alive())
            .collect();
        if live.is_empty() {
            return None;
        }
        let key = self.stages[global as usize].wire.routing_key();
        Some(live[(key % live.len() as u64) as usize])
    }

    fn poison(&mut self, global: u64, code: u16, message: String) -> Place {
        self.record(global, Err((code, message)));
        Place::Poisoned
    }

    fn poison_upstream(&mut self, global: u64, upstream: u64) -> Place {
        let message = format!(
            "stage '{}' depends on '{}', which failed",
            self.stages[global as usize].wire.label, self.stages[upstream as usize].wire.label
        );
        self.poison(global, code::UPSTREAM_FAILED, message)
    }

    /// Records a final outcome for stage `global` and queues it for
    /// delivery to the client.
    fn record(&mut self, global: u64, outcome: WireOutcome) {
        let state = &mut self.stages[global as usize];
        if state.done {
            return;
        }
        state.done = true;
        state.failed = outcome.is_err();
        self.done_count += 1;
        self.completed.push_back((global, outcome));
    }

    /// Drains every live worker's completion stream without blocking, then
    /// retries deferred placements against the new state.
    fn sweep(&mut self) {
        for s in 0..self.shards.len() {
            if !self.shards[s].alive() {
                continue;
            }
            loop {
                match self.shards[s].roundtrip(&Request::PollReport) {
                    Ok(Response::Report { index, outcome }) => {
                        let global = self.shards[s].local_to_global[index as usize];
                        self.record(global, outcome);
                    }
                    Ok(Response::NotReady) | Ok(Response::NoPending) => break,
                    Ok(_) | Err(_) => {
                        self.shards[s].stream = None;
                        self.shard_died(s);
                        break;
                    }
                }
            }
        }
        self.pump_deferred();
    }

    /// Shard-death recovery: every unfinished stage that worker owned is
    /// either resubmitted (independent stages — their inputs are fully
    /// described on the wire), replanted together with its producer chain
    /// on a survivor (dependent stages, when the fleet shares a
    /// stage-result store), or failed with a typed `SHARD_LOST` outcome
    /// (dependent stages without a shared store — their upstream waveforms
    /// died with the session).
    fn shard_died(&mut self, shard: usize) {
        let owned = self.shards[shard].local_to_global.clone();
        for global in owned {
            let state = &mut self.stages[global as usize];
            if state.done || state.shard != Some(shard) {
                continue;
            }
            state.shard = None;
            state.local = None;
            if state.wire.is_independent() {
                self.deferred.push(global);
            } else if self.shared_result_cache {
                self.requeue_chain(global, shard);
            } else {
                let message = format!(
                    "shard {shard} died while running dependent stage '{}'",
                    state.wire.label
                );
                self.record(global, Err((code::SHARD_LOST, message)));
            }
        }
    }

    /// Replants dependent stage `leaf` (whose shard just died) and its whole
    /// waveform-producer chain on a surviving shard. The routing rules pin a
    /// chain to one shard, so the entire chain died together; with every
    /// worker sharing one stage-result store, resubmitting the finished
    /// links costs a cache replay each (bit-identical, no backend) and
    /// regrows the waveforms the unfinished links need. Duplicate reports
    /// from replayed links are dropped by `record`'s idempotence.
    fn requeue_chain(&mut self, leaf: u64, dead: usize) {
        // The producer chain, leaf first.
        let mut chain = vec![leaf];
        let mut cursor = leaf;
        while let Some(p) = self.stages[cursor as usize].wire.input.producer() {
            chain.push(p);
            cursor = p;
        }
        // Replant root-first so each link finds its producer live again.
        for &member in chain.iter().rev() {
            let state = &self.stages[member as usize];
            // Links already replanted (several leaves share their upstream
            // chain, and the root may sit in the independent-requeue set)
            // keep their new home.
            if let Some(s) = state.shard {
                if self.shards[s].alive() {
                    continue;
                }
            }
            if member != leaf && state.wire.is_independent() && !state.done {
                // `shard_died` already queued (or will queue) the root
                // through the normal independent path; the links above it
                // defer until it lands.
                continue;
            }
            let was_done = state.done;
            if was_done && state.failed {
                let _ = self.poison_upstream(leaf, member);
                return;
            }
            self.stages[member as usize].shard = None;
            self.stages[member as usize].local = None;
            match self.try_place(member) {
                Place::Submitted => {}
                Place::Deferred if !was_done => self.deferred.push(member),
                Place::Rejected(code, message) if !was_done => {
                    self.record(member, Err((code, message)));
                }
                Place::Poisoned if !was_done => {}
                // A finished link that cannot be replanted (no live shard,
                // or a worker rejected it): `record` no-ops on done stages,
                // so the loss lands on the stage that still needed it.
                _ => {
                    let message = format!(
                        "shard {dead} died and no survivor could replay '{}' for dependent \
                         stage '{}'",
                        self.stages[member as usize].wire.label,
                        self.stages[leaf as usize].wire.label
                    );
                    self.record(leaf, Err((code::SHARD_LOST, message)));
                    return;
                }
            }
        }
    }

    /// Replays deferred placements until a fixpoint.
    fn pump_deferred(&mut self) {
        loop {
            let mut progressed = false;
            let pending = std::mem::take(&mut self.deferred);
            for global in pending {
                if self.stages[global as usize].done {
                    progressed = true;
                    continue;
                }
                match self.try_place(global) {
                    Place::Submitted | Place::Poisoned => progressed = true,
                    Place::Rejected(code, message) => {
                        // The handle already exists client-side; a deferred
                        // rejection surfaces as a failure outcome instead.
                        self.record(global, Err((code, message)));
                        progressed = true;
                    }
                    Place::Deferred => self.deferred.push(global),
                }
            }
            if !progressed || self.deferred.is_empty() {
                return;
            }
        }
    }

    fn all_done(&self) -> bool {
        self.done_count as usize == self.stages.len()
    }

    /// Blocking next-completion, multiplexed across every worker.
    fn next_report(&mut self) -> Response {
        loop {
            if let Some((index, outcome)) = self.completed.pop_front() {
                return Response::Report { index, outcome };
            }
            if self.all_done() {
                return Response::NoPending;
            }
            self.sweep();
            if self.completed.is_empty() && !self.all_done() {
                std::thread::sleep(Duration::from_micros(300));
            }
        }
    }

    fn poll_report(&mut self) -> Response {
        if let Some((index, outcome)) = self.completed.pop_front() {
            return Response::Report { index, outcome };
        }
        if self.all_done() {
            return Response::NoPending;
        }
        self.sweep();
        match self.completed.pop_front() {
            Some((index, outcome)) => Response::Report { index, outcome },
            None if self.all_done() => Response::NoPending,
            None => Response::NotReady,
        }
    }

    fn wait_all(&mut self) -> Vec<Response> {
        while !self.all_done() {
            self.sweep();
            if !self.all_done() && self.completed.is_empty() {
                std::thread::sleep(Duration::from_micros(300));
            }
        }
        // One bulk frame for the whole drain, mirroring the single-server
        // front: a wide session costs one frame + one Done.
        let reports: Vec<(u64, WireOutcome)> = self.completed.drain(..).collect();
        let count = reports.len() as u64;
        vec![Response::Reports { reports }, Response::Done { count }]
    }

    fn cancel(&mut self) -> Response {
        for s in 0..self.shards.len() {
            if !self.shards[s].alive() {
                continue;
            }
            match self.shards[s].roundtrip(&Request::Cancel) {
                Ok(Response::CancelAck) => {}
                Ok(_) | Err(_) => {
                    self.shards[s].stream = None;
                    self.shard_died(s);
                }
            }
        }
        // Stages the coordinator was still holding back can never run now.
        let pending = std::mem::take(&mut self.deferred);
        for global in pending {
            if !self.stages[global as usize].done {
                let message = format!(
                    "session cancelled before deferred stage '{}' could be placed",
                    self.stages[global as usize].wire.label
                );
                self.record(global, Err((code::CANCELLED, message)));
            }
        }
        Response::CancelAck
    }
}

fn respond(reader: &mut BufReader<TcpStream>, response: &Response) -> Result<(), WireError> {
    write_frame(reader.get_mut(), &response.encode())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_env_is_inert_in_normal_processes() {
        // The test process has no worker environment, so this must be a
        // cheap no-op returning false.
        assert!(!maybe_run_worker_from_env());
    }

    #[test]
    fn ready_line_round_trips_an_address() {
        let line = format!("{READY_PREFIX}127.0.0.1:4525");
        let rest = line.strip_prefix(READY_PREFIX).unwrap();
        assert_eq!(
            rest.parse::<SocketAddr>().unwrap(),
            "127.0.0.1:4525".parse::<SocketAddr>().unwrap()
        );
    }
}
