//! Stable response codes and the client-facing [`ServiceError`] type.
//!
//! Every facade `EngineError` variant maps to one fixed `u16` code, so a
//! client can match on failure categories without parsing display strings —
//! and so the codes stay stable across releases even if error messages
//! change. Codes below 100 mirror engine errors one-to-one (plus the
//! service-only `SHARD_LOST`); codes from 100 up are protocol-layer
//! failures.

use rlc_ceff_suite::EngineError;

use crate::wire::WireError;

/// The stable response codes of the service protocol.
pub mod code {
    /// A stage or load description failed validation.
    pub const INVALID_STAGE: u16 = 1;
    /// A load could not be reduced to a usable admittance.
    pub const LOAD: u16 = 2;
    /// The analytic effective-capacitance flow failed.
    pub const MODEL: u16 = 3;
    /// The golden transient simulation failed.
    pub const SIMULATION: u16 = 4;
    /// Cell characterization or table lookup failed.
    pub const CHARACTERIZATION: u16 = 5;
    /// The persistent characterization cache failed.
    pub const CACHE: u16 = 6;
    /// The requested load/backend combination is unsupported.
    pub const UNSUPPORTED: u16 = 7;
    /// A stage analysis panicked server-side.
    pub const STAGE_PANICKED: u16 = 8;
    /// A dependency handle could not be resolved.
    pub const INVALID_DEPENDENCY: u16 = 9;
    /// The submission would close a dependency cycle.
    pub const DEPENDENCY_CYCLE: u16 = 10;
    /// A named sink does not exist on the producer's load.
    pub const UNKNOWN_SINK: u16 = 11;
    /// The stage was poisoned by a failing producer.
    pub const UPSTREAM_FAILED: u16 = 12;
    /// The session was cancelled before the stage ran.
    pub const CANCELLED: u16 = 13;
    /// The session deadline passed before the stage ran.
    pub const DEADLINE_EXCEEDED: u16 = 14;
    /// The shard that owned the stage died and the stage could not be
    /// transparently resubmitted (it had dependencies, or no shard
    /// survived).
    pub const SHARD_LOST: u16 = 15;
    /// The stage's netlist failed the static lint audit (Error-severity
    /// findings under a `Deny` lint level).
    pub const LINT: u16 = 16;

    /// A malformed or out-of-order message (e.g. `Submit` before `Hello`).
    pub const PROTOCOL: u16 = 100;
    /// A frame failed its payload checksum.
    pub const CHECKSUM: u16 = 101;
    /// A frame carried a stale protocol version.
    pub const STALE_PROTOCOL: u16 = 102;
    /// A frame declared an oversized payload.
    pub const OVERSIZED: u16 = 103;
}

/// The stable code of an engine error.
pub fn engine_code(error: &EngineError) -> u16 {
    match error {
        EngineError::InvalidStage { .. } => code::INVALID_STAGE,
        EngineError::Load { .. } => code::LOAD,
        EngineError::Model { .. } => code::MODEL,
        EngineError::Simulation { .. } => code::SIMULATION,
        EngineError::Characterization { .. } => code::CHARACTERIZATION,
        EngineError::Cache { .. } => code::CACHE,
        EngineError::Unsupported { .. } => code::UNSUPPORTED,
        EngineError::StagePanicked { .. } => code::STAGE_PANICKED,
        EngineError::InvalidDependency { .. } => code::INVALID_DEPENDENCY,
        EngineError::DependencyCycle { .. } => code::DEPENDENCY_CYCLE,
        EngineError::UnknownSink { .. } => code::UNKNOWN_SINK,
        EngineError::UpstreamFailed { .. } => code::UPSTREAM_FAILED,
        EngineError::Cancelled { .. } => code::CANCELLED,
        EngineError::DeadlineExceeded { .. } => code::DEADLINE_EXCEEDED,
        EngineError::Lint { .. } => code::LINT,
    }
}

/// The stable code of a recoverable frame-layer error the server answers
/// with a typed [`crate::protocol::Response::Error`].
pub fn wire_code(error: &WireError) -> u16 {
    match error {
        WireError::BadChecksum => code::CHECKSUM,
        WireError::StaleVersion { .. } => code::STALE_PROTOCOL,
        WireError::Oversized { .. } => code::OVERSIZED,
        _ => code::PROTOCOL,
    }
}

/// A short, stable name for a response code (for logs and error displays).
pub fn code_name(code: u16) -> &'static str {
    match code {
        code::INVALID_STAGE => "invalid-stage",
        code::LOAD => "load",
        code::MODEL => "model",
        code::SIMULATION => "simulation",
        code::CHARACTERIZATION => "characterization",
        code::CACHE => "cache",
        code::UNSUPPORTED => "unsupported",
        code::STAGE_PANICKED => "stage-panicked",
        code::INVALID_DEPENDENCY => "invalid-dependency",
        code::DEPENDENCY_CYCLE => "dependency-cycle",
        code::UNKNOWN_SINK => "unknown-sink",
        code::UPSTREAM_FAILED => "upstream-failed",
        code::CANCELLED => "cancelled",
        code::DEADLINE_EXCEEDED => "deadline-exceeded",
        code::SHARD_LOST => "shard-lost",
        code::LINT => "lint",
        code::PROTOCOL => "protocol",
        code::CHECKSUM => "checksum",
        code::STALE_PROTOCOL => "stale-protocol",
        code::OVERSIZED => "oversized",
        _ => "unknown",
    }
}

/// Any error surfaced by the [`crate::client::ServiceClient`] — either a
/// transport problem on this end, or a typed failure the server reported.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A frame-layer failure (socket error, truncated frame, bad checksum).
    Wire(WireError),
    /// The server (or the shard coordinator) reported a typed failure.
    Remote {
        /// The stable response code (see [`code`]).
        code: u16,
        /// The server's human-readable detail.
        message: String,
    },
    /// The server answered with a response the protocol does not allow at
    /// this point in the conversation.
    Unexpected {
        /// What arrived instead of the expected response.
        what: String,
    },
}

impl ServiceError {
    /// The stable response code, for remote failures.
    pub fn code(&self) -> Option<u16> {
        match self {
            ServiceError::Remote { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// A remote failure with the given code.
    pub(crate) fn remote(code: u16, message: impl Into<String>) -> ServiceError {
        ServiceError::Remote {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Wire(e) => write!(f, "transport failed: {e}"),
            ServiceError::Remote { code, message } => {
                write!(f, "remote error [{} {}]: {message}", code, code_name(*code))
            }
            ServiceError::Unexpected { what } => {
                write!(f, "unexpected response: {what}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_codes_are_stable_and_distinct() {
        let errors: Vec<EngineError> = vec![
            EngineError::invalid("x"),
            EngineError::unsupported("x"),
            EngineError::Cache { what: "x".into() },
            EngineError::StagePanicked {
                label: "a".into(),
                detail: "b".into(),
            },
            EngineError::InvalidDependency { what: "x".into() },
            EngineError::DependencyCycle { label: "a".into() },
            EngineError::UnknownSink {
                label: "a".into(),
                sink: "s".into(),
                available: vec![],
            },
            EngineError::UpstreamFailed {
                label: "a".into(),
                upstream: "b".into(),
            },
            EngineError::Cancelled { label: "a".into() },
            EngineError::DeadlineExceeded { label: "a".into() },
            EngineError::Lint {
                label: "a".into(),
                diagnostics: vec![],
            },
        ];
        let mut codes: Vec<u16> = errors.iter().map(engine_code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len(), "codes must be distinct");
        // Spot-check the documented values — these are wire-stable.
        assert_eq!(engine_code(&EngineError::invalid("x")), 1);
        assert_eq!(
            engine_code(&EngineError::DeadlineExceeded { label: "a".into() }),
            14
        );
        assert_eq!(
            engine_code(&EngineError::DependencyCycle { label: "a".into() }),
            10
        );
        assert_eq!(
            engine_code(&EngineError::Lint {
                label: "a".into(),
                diagnostics: vec![],
            }),
            16
        );
        assert_eq!(code_name(16), "lint");
    }

    #[test]
    fn wire_codes_cover_the_recoverable_failures() {
        assert_eq!(wire_code(&WireError::BadChecksum), code::CHECKSUM);
        assert_eq!(
            wire_code(&WireError::StaleVersion { got: 2 }),
            code::STALE_PROTOCOL
        );
        assert_eq!(
            wire_code(&WireError::Oversized { declared: 1 }),
            code::OVERSIZED
        );
        assert_eq!(
            wire_code(&WireError::Malformed { what: "x".into() }),
            code::PROTOCOL
        );
    }

    #[test]
    fn service_error_displays_code_names() {
        let e = ServiceError::remote(code::SHARD_LOST, "worker 1 died");
        assert_eq!(e.code(), Some(code::SHARD_LOST));
        assert!(e.to_string().contains("shard-lost"));
        assert!(e.to_string().contains("worker 1 died"));
        let e: ServiceError = WireError::BadChecksum.into();
        assert!(e.code().is_none());
        assert!(e.to_string().contains("checksum"));
        let e = ServiceError::Unexpected {
            what: "Pong".into(),
        };
        assert!(e.to_string().contains("Pong"));
        assert_eq!(code_name(9999), "unknown");
    }
}
