//! The single-process timing server: one TCP listener, one
//! `AnalysisSession` per client connection.
//!
//! Each accepted connection gets its own thread and its own session against
//! the shared `TimingEngine`; the characterization [`Library`] is shared
//! across connections (and, through the on-disk cache directory, across
//! *processes* — every shard worker of a cluster points at the same cache
//! dir, so only the first worker ever pays a cell's characterization cost).
//!
//! The request loop is strictly request/response. Frame-layer errors that
//! leave the stream on a frame boundary (stale version, bad checksum,
//! malformed payload) are answered with a typed
//! [`Response::Error`] and the connection keeps serving; errors that
//! desynchronize the stream close it — after reporting the oversized case,
//! which is still diagnosable.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rlc_ceff_suite::charlib::{DriverCell, Library};
use rlc_ceff_suite::interconnect::{BranchId, CoupledBus, RlcLine, RlcTree};
use rlc_ceff_suite::{
    AggressorSpec, AggressorSwitching, AnalysisSession, BackendChoice, CoupledBusLoad, Diagnostic,
    DistributedRlcLoad, EngineConfig, EngineError, LoadModel, LumpedCapLoad, PiModelLoad,
    RlcTreeLoad, SessionOptions, Severity, Stage, StageHandle, StageReport, TimingEngine,
};

use crate::error::{engine_code, wire_code};
use crate::protocol::{
    Request, Response, WireBackend, WireCellRef, WireDiagnostic, WireInput, WireLoad, WireOutcome,
    WireReport, WireSessionOptions, WireStage,
};
use crate::wire::{is_recoverable, read_frame, write_frame, WireError};

/// Converts wire session options into facade [`SessionOptions`]. The
/// deadline clock starts when the server creates the session — i.e. at
/// `Hello` time.
pub fn session_options(wire: &WireSessionOptions) -> SessionOptions {
    let mut options = SessionOptions::default()
        .with_max_in_flight(wire.max_in_flight as usize)
        .with_sampled_handoff(wire.sampled_handoff);
    if let Some(nanos) = wire.timeout_nanos {
        options = options.with_deadline(Duration::from_nanos(nanos));
    }
    options
}

/// Converts facade [`SessionOptions`] into their wire form (the far-end
/// fidelity is not carried; the server default applies remotely).
pub fn wire_options(options: &SessionOptions) -> WireSessionOptions {
    WireSessionOptions {
        timeout_nanos: options
            .deadline
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)),
        max_in_flight: options.max_in_flight as u64,
        sampled_handoff: options.sampled_handoff,
    }
}

/// The scalar wire form of a completed [`StageReport`].
pub fn wire_report(report: &StageReport) -> WireReport {
    WireReport {
        label: report.label.clone(),
        backend: report.backend.to_string(),
        delay: report.delay,
        slew: report.slew,
        input_t50: report.input_t50,
        vdd: report.vdd,
        used_two_ramp: report.used_two_ramp,
        elapsed_seconds: report.elapsed_seconds,
    }
}

/// The wire form of a list of static-audit findings. Severity maps onto the
/// wire tag (`0` info, `1` warning, `2` error); code, locus and message
/// travel verbatim, so the remote audit is bit-identical to the in-process
/// one.
pub fn wire_diagnostics(diagnostics: &[Diagnostic]) -> Vec<WireDiagnostic> {
    diagnostics
        .iter()
        .map(|d| WireDiagnostic {
            code: d.code.clone(),
            severity: match d.severity {
                Severity::Info => 0,
                Severity::Warning => 1,
                Severity::Error => 2,
            },
            locus: d.locus.clone(),
            message: d.message.clone(),
        })
        .collect()
}

/// Maps a per-stage engine outcome onto the wire.
pub fn wire_outcome(outcome: &Result<StageReport, EngineError>) -> WireOutcome {
    match outcome {
        Ok(report) => Ok(wire_report(report)),
        Err(e) => Err((engine_code(e), e.to_string())),
    }
}

/// A single-process timing-analysis server. This is both the standalone
/// `--shards 1` mode of `rlc-serviced` and the per-worker process of a
/// [`crate::shard::ShardServer`] cluster.
pub struct Server {
    listener: TcpListener,
    engine: TimingEngine,
    library: Arc<Mutex<Library>>,
}

impl Server {
    /// Binds the server. When `cache_dir` is set, the library warm-starts
    /// from (and persists to) the on-disk characterization cache — the
    /// mechanism that lets many worker processes share one characterization
    /// effort. When `result_cache_dir` is set, every analyzed stage is
    /// persisted to (and replayed from) the content-addressed stage-result
    /// store, so repeated submissions of unchanged work — across clients,
    /// sessions, and worker processes sharing the directory — never touch
    /// a backend.
    ///
    /// # Errors
    /// I/O errors from binding, and cache-directory failures surfaced as
    /// [`std::io::ErrorKind::Other`].
    pub fn bind(
        addr: &str,
        cache_dir: Option<&Path>,
        result_cache_dir: Option<&Path>,
    ) -> std::io::Result<Server> {
        let mut builder = EngineConfig::builder();
        if let Some(dir) = cache_dir {
            builder = builder.cache_dir(dir);
        }
        if let Some(dir) = result_cache_dir {
            builder = builder.result_cache_dir(dir);
        }
        let engine = TimingEngine::new(builder.build());
        let library = engine
            .open_library()
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            engine,
            library: Arc::new(Mutex::new(library)),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener address")
    }

    /// Accepts connections forever, one thread per client.
    pub fn serve(&self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let engine = self.engine.clone();
                    let library = self.library.clone();
                    std::thread::spawn(move || serve_connection(stream, &engine, &library));
                }
                Err(_) => continue,
            }
        }
    }

    /// Moves the accept loop onto a background thread and returns the bound
    /// address — the in-process embedding tests and benches use.
    pub fn serve_in_background(self) -> SocketAddr {
        let addr = self.local_addr();
        std::thread::spawn(move || self.serve());
        addr
    }
}

/// The per-connection request loop.
fn serve_connection(stream: TcpStream, engine: &TimingEngine, library: &Arc<Mutex<Library>>) {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    let mut session: Option<AnalysisSession> = None;
    let mut handles: Vec<StageHandle> = Vec::new();

    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            // Clean close between frames: the conversation is over.
            Ok(None) => return,
            Err(e) if is_recoverable(&e) => {
                if respond(
                    &mut reader,
                    &Response::Error {
                        code: wire_code(&e),
                        message: e.to_string(),
                    },
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
            Err(e @ WireError::Oversized { .. }) => {
                // Report it (the declared length was rejected before any
                // allocation), then close: the stream position inside the
                // oversized frame is unknowable.
                let _ = respond(
                    &mut reader,
                    &Response::Error {
                        code: wire_code(&e),
                        message: e.to_string(),
                    },
                );
                return;
            }
            Err(_) => return,
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(e) => {
                if respond(
                    &mut reader,
                    &Response::Error {
                        code: wire_code(&e),
                        message: e.to_string(),
                    },
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
        };

        let done = matches!(request, Request::Close);
        let responses = handle_request(request, engine, library, &mut session, &mut handles);
        for response in responses {
            if respond(&mut reader, &response).is_err() {
                return;
            }
        }
        if done {
            return;
        }
    }
}

fn respond(reader: &mut BufReader<TcpStream>, response: &Response) -> Result<(), WireError> {
    write_frame(reader.get_mut(), &response.encode())
}

/// Handles one decoded request; a `WaitAll` produces two response frames
/// (a bulk `Reports` batch, then `Done`), everything else exactly one.
fn handle_request(
    request: Request,
    engine: &TimingEngine,
    library: &Arc<Mutex<Library>>,
    session: &mut Option<AnalysisSession>,
    handles: &mut Vec<StageHandle>,
) -> Vec<Response> {
    use crate::error::code;

    let need_session = |session: &Option<AnalysisSession>| -> Option<Response> {
        if session.is_none() {
            Some(Response::Error {
                code: code::PROTOCOL,
                message: "no open session: send Hello first".into(),
            })
        } else {
            None
        }
    };

    match request {
        Request::Hello { options } => {
            if session.is_some() {
                return vec![Response::Error {
                    code: code::PROTOCOL,
                    message: "a session is already open on this connection".into(),
                }];
            }
            *session = Some(engine.session_with(session_options(&options)));
            vec![Response::HelloAck]
        }
        Request::Submit(wire_stage) => {
            if let Some(err) = need_session(session) {
                return vec![err];
            }
            let s = session.as_mut().expect("session checked above");
            match build_stage(&wire_stage, library, handles).and_then(|stage| s.submit(stage)) {
                Ok(handle) => {
                    handles.push(handle);
                    vec![Response::Submitted {
                        index: (handles.len() - 1) as u64,
                    }]
                }
                Err(e) => vec![Response::Error {
                    code: engine_code(&e),
                    message: e.to_string(),
                }],
            }
        }
        Request::NextReport => {
            if let Some(err) = need_session(session) {
                return vec![err];
            }
            let s = session.as_mut().expect("session checked above");
            match s.next_report() {
                Some((handle, outcome)) => vec![Response::Report {
                    index: handle.index() as u64,
                    outcome: wire_outcome(&outcome),
                }],
                None => vec![Response::NoPending],
            }
        }
        Request::PollReport => {
            if let Some(err) = need_session(session) {
                return vec![err];
            }
            let s = session.as_mut().expect("session checked above");
            if s.outstanding() == 0 {
                return vec![Response::NoPending];
            }
            match s.try_next_report() {
                Some((handle, outcome)) => vec![Response::Report {
                    index: handle.index() as u64,
                    outcome: wire_outcome(&outcome),
                }],
                None => vec![Response::NotReady],
            }
        }
        Request::WaitAll => {
            if let Some(err) = need_session(session) {
                return vec![err];
            }
            let s = session.as_mut().expect("session checked above");
            // One bulk frame for the whole drain: a wide session costs one
            // frame + one Done, not a frame per stage.
            let mut reports = Vec::new();
            while let Some((handle, outcome)) = s.next_report() {
                reports.push((handle.index() as u64, wire_outcome(&outcome)));
            }
            let count = reports.len() as u64;
            vec![Response::Reports { reports }, Response::Done { count }]
        }
        Request::Cancel => {
            if let Some(s) = session.as_ref() {
                s.cancel();
            }
            vec![Response::CancelAck]
        }
        Request::Ping => vec![Response::Pong],
        Request::Close => vec![Response::Bye],
        Request::Lint(stage) => {
            // The audit inspects only the load netlist; the input event and
            // ordering edges are irrelevant to it, so they are neutralized
            // rather than resolved — a lint-only connection has no accepted
            // submissions to resolve handles against.
            let mut wire = *stage;
            wire.input = WireInput::Event {
                slew: 100e-12,
                delay: None,
            };
            wire.after.clear();
            match build_stage(&wire, library, handles) {
                Ok(stage) => vec![Response::LintReport {
                    diagnostics: wire_diagnostics(&engine.lint(&stage)),
                }],
                Err(e) => vec![Response::Error {
                    code: engine_code(&e),
                    message: e.to_string(),
                }],
            }
        }
    }
}

/// Rebuilds a facade [`Stage`] from its wire description, resolving the
/// cell against the shared library and wire handles against this
/// connection's accepted submissions.
fn build_stage(
    wire: &WireStage,
    library: &Arc<Mutex<Library>>,
    handles: &[StageHandle],
) -> Result<Stage, EngineError> {
    let cell: Arc<DriverCell> = match wire.cell {
        WireCellRef::Characterize { size } => library
            .lock()
            .expect("library lock")
            .get_or_characterize(size)
            .map_err(EngineError::from)?,
        WireCellRef::Synthetic {
            size,
            on_resistance,
        } => Arc::new(rlc_ceff_suite::fixtures::synthetic_cell(
            size,
            on_resistance,
        )),
    };
    let load = build_load(&wire.load)?;
    let mut builder = Stage::builder_shared(cell, load).label(&wire.label);
    match &wire.input {
        WireInput::Event { slew, delay } => {
            builder = builder.input_slew(*slew);
            if let Some(delay) = delay {
                builder = builder.input_delay(*delay);
            }
        }
        WireInput::FromFarEnd { producer } => {
            builder = builder.input_from(resolve_handle(handles, *producer, &wire.label)?);
        }
        WireInput::FromSink { producer, sink } => {
            builder =
                builder.input_from_sink(resolve_handle(handles, *producer, &wire.label)?, sink);
        }
    }
    for &after in &wire.after {
        builder = builder.after(resolve_handle(handles, after, &wire.label)?);
    }
    match wire.backend {
        WireBackend::Default => {}
        WireBackend::Analytic => builder = builder.backend(BackendChoice::Analytic),
        WireBackend::Spice => builder = builder.backend(BackendChoice::Spice),
    }
    builder.build()
}

fn resolve_handle(
    handles: &[StageHandle],
    index: u64,
    label: &str,
) -> Result<StageHandle, EngineError> {
    usize::try_from(index)
        .ok()
        .and_then(|i| handles.get(i).copied())
        .ok_or_else(|| EngineError::InvalidDependency {
            what: format!(
                "stage '{label}' references wire handle #{index}, but only {} stages have been \
                 accepted on this connection",
                handles.len()
            ),
        })
}

/// Validates one wire line and constructs it ([`RlcLine::new`] panics on
/// non-physical values; the wire layer must return a typed error instead).
fn build_line(line: &crate::protocol::WireLine, what: &str) -> Result<RlcLine, EngineError> {
    let physical = [
        line.resistance,
        line.inductance,
        line.capacitance,
        line.length,
    ]
    .iter()
    .all(|v| *v > 0.0 && v.is_finite());
    if !physical {
        return Err(EngineError::invalid(format!(
            "{what} must have positive, finite R/L/C/length (got R = {:e}, L = {:e}, C = {:e}, \
             len = {:e})",
            line.resistance, line.inductance, line.capacitance, line.length
        )));
    }
    Ok(RlcLine::new(
        line.resistance,
        line.inductance,
        line.capacitance,
        line.length,
    ))
}

fn build_aggressor(drive: &crate::protocol::WireAggressor) -> Result<AggressorSpec, EngineError> {
    let switching = match drive.switching {
        0 => AggressorSwitching::Quiet,
        1 => AggressorSwitching::SameDirection,
        2 => AggressorSwitching::OppositeDirection,
        other => {
            return Err(EngineError::invalid(format!(
                "unknown aggressor switching tag {other} (expected 0 quiet, 1 same, 2 opposite)"
            )))
        }
    };
    AggressorSpec::new(switching, drive.slew, drive.delay, drive.amplitude)
}

/// Rebuilds a facade load model from its wire topology, with every
/// validation failure surfaced as a typed [`EngineError::InvalidStage`]
/// (the underlying constructors assert on non-physical values).
pub fn build_load(load: &WireLoad) -> Result<Arc<dyn LoadModel>, EngineError> {
    match load {
        WireLoad::Lumped { c } => Ok(Arc::new(LumpedCapLoad::new(*c)?)),
        WireLoad::Pi {
            c_near,
            resistance,
            c_far,
        } => Ok(Arc::new(PiModelLoad::new(
            rlc_ceff_suite::moments::PiModel {
                c_near: *c_near,
                resistance: *resistance,
                c_far: *c_far,
            },
        )?)),
        WireLoad::Line { line, c_load } => Ok(Arc::new(DistributedRlcLoad::new(
            build_line(line, "a line load")?,
            *c_load,
        )?)),
        WireLoad::Tree { branches } => {
            let mut tree = RlcTree::new();
            let mut ids: Vec<BranchId> = Vec::with_capacity(branches.len());
            for (i, branch) in branches.iter().enumerate() {
                let parent = match branch.parent {
                    None => None,
                    Some(p) => {
                        let p = usize::try_from(p).ok().filter(|&p| p < i).ok_or_else(|| {
                            EngineError::invalid(format!(
                                "tree branch {i} names parent {:?}, but parents must precede \
                                 their children",
                                branch.parent
                            ))
                        })?;
                        Some(ids[p])
                    }
                };
                let id = tree.add_branch(parent, build_line(&branch.line, "a tree branch")?);
                if let Some((name, c_load)) = &branch.sink {
                    if !(*c_load >= 0.0 && c_load.is_finite()) {
                        return Err(EngineError::invalid(format!(
                            "sink '{name}' has a non-physical load capacitance {c_load:e}"
                        )));
                    }
                    tree.set_sink(id, name, *c_load);
                }
                ids.push(id);
            }
            Ok(Arc::new(RlcTreeLoad::new(tree)?))
        }
        WireLoad::Bus {
            victim,
            aggressor,
            coupling_capacitance,
            mutual_inductance,
            victim_load,
            aggressor_load,
            drive,
        } => {
            let victim = build_line(victim, "the victim line")?;
            let aggressor_line = build_line(aggressor, "the aggressor line")?;
            let couplings_physical = *coupling_capacitance >= 0.0
                && coupling_capacitance.is_finite()
                && mutual_inductance.is_finite()
                && mutual_inductance * mutual_inductance
                    < victim.inductance() * aggressor_line.inductance()
                && *victim_load >= 0.0
                && victim_load.is_finite()
                && *aggressor_load >= 0.0
                && aggressor_load.is_finite();
            if !couplings_physical {
                return Err(EngineError::invalid(format!(
                    "bus coupling must be physical (Cc = {coupling_capacitance:e}, \
                     M = {mutual_inductance:e}, victim CL = {victim_load:e}, \
                     aggressor CL = {aggressor_load:e})"
                )));
            }
            let bus = CoupledBus::new(
                victim,
                aggressor_line,
                *coupling_capacitance,
                *mutual_inductance,
                *victim_load,
                *aggressor_load,
            );
            Ok(Arc::new(CoupledBusLoad::new(bus, build_aggressor(drive)?)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{WireAggressor, WireBranch, WireLine};

    #[test]
    fn wire_loads_rebuild_into_the_facade_models() {
        let line = WireLine {
            resistance: 72.44,
            inductance: 5.14e-9,
            capacitance: 1.10e-12,
            length: 5e-3,
        };
        let lumped = build_load(&WireLoad::Lumped { c: 200e-15 }).unwrap();
        assert!((lumped.total_capacitance() - 200e-15).abs() < 1e-24);
        let pi = build_load(&WireLoad::Pi {
            c_near: 0.2e-12,
            resistance: 120.0,
            c_far: 0.9e-12,
        })
        .unwrap();
        assert!((pi.total_capacitance() - 1.1e-12).abs() < 1e-24);
        let rlc = build_load(&WireLoad::Line {
            line,
            c_load: 10e-15,
        })
        .unwrap();
        assert!((rlc.total_capacitance() - (1.10e-12 + 10e-15)).abs() < 1e-18);
        let tree = build_load(&WireLoad::Tree {
            branches: vec![
                WireBranch {
                    parent: None,
                    line,
                    sink: None,
                },
                WireBranch {
                    parent: Some(0),
                    line,
                    sink: Some(("rx0".into(), 15e-15)),
                },
                WireBranch {
                    parent: Some(0),
                    line,
                    sink: Some(("rx1".into(), 25e-15)),
                },
            ],
        })
        .unwrap();
        assert_eq!(tree.sink_names(), vec!["rx0", "rx1"]);
        let bus = build_load(&WireLoad::Bus {
            victim: line,
            aggressor: line,
            coupling_capacitance: 0.4e-12,
            mutual_inductance: 1e-9,
            victim_load: 10e-15,
            aggressor_load: 10e-15,
            drive: WireAggressor {
                switching: 2,
                slew: 100e-12,
                delay: 50e-12,
                amplitude: 1.8,
            },
        })
        .unwrap();
        assert_eq!(bus.sink_names(), vec!["victim", "aggressor"]);
    }

    #[test]
    fn non_physical_wire_loads_are_typed_errors_not_panics() {
        let bad_line = WireLine {
            resistance: -1.0,
            inductance: 5.14e-9,
            capacitance: 1.10e-12,
            length: 5e-3,
        };
        let good_line = WireLine {
            resistance: 72.44,
            inductance: 5.14e-9,
            capacitance: 1.10e-12,
            length: 5e-3,
        };
        assert!(matches!(
            build_load(&WireLoad::Line {
                line: bad_line,
                c_load: 10e-15
            }),
            Err(EngineError::InvalidStage { .. })
        ));
        // A forward parent reference is rejected, not asserted on.
        assert!(matches!(
            build_load(&WireLoad::Tree {
                branches: vec![WireBranch {
                    parent: Some(3),
                    line: good_line,
                    sink: Some(("rx".into(), 1e-15)),
                }],
            }),
            Err(EngineError::InvalidStage { .. })
        ));
        // A coupling coefficient >= 1 is rejected, not asserted on.
        assert!(matches!(
            build_load(&WireLoad::Bus {
                victim: good_line,
                aggressor: good_line,
                coupling_capacitance: 0.4e-12,
                mutual_inductance: 6e-9,
                victim_load: 10e-15,
                aggressor_load: 10e-15,
                drive: WireAggressor {
                    switching: 0,
                    slew: 100e-12,
                    delay: 0.0,
                    amplitude: 1.8
                },
            }),
            Err(EngineError::InvalidStage { .. })
        ));
        // Unknown aggressor switching tags too.
        assert!(matches!(
            build_load(&WireLoad::Bus {
                victim: good_line,
                aggressor: good_line,
                coupling_capacitance: 0.4e-12,
                mutual_inductance: 1e-9,
                victim_load: 10e-15,
                aggressor_load: 10e-15,
                drive: WireAggressor {
                    switching: 9,
                    slew: 100e-12,
                    delay: 0.0,
                    amplitude: 1.8
                },
            }),
            Err(EngineError::InvalidStage { .. })
        ));
    }

    #[test]
    fn options_round_trip_between_wire_and_facade() {
        let wire = WireSessionOptions {
            timeout_nanos: Some(250_000_000),
            max_in_flight: 3,
            sampled_handoff: false,
        };
        let options = session_options(&wire);
        assert_eq!(options.deadline, Some(Duration::from_millis(250)));
        assert_eq!(options.max_in_flight, 3);
        assert!(!options.sampled_handoff);
        assert_eq!(wire_options(&options), wire);
        assert_eq!(
            wire_options(&SessionOptions::default()),
            WireSessionOptions::defaults()
        );
    }
}
