//! Message layer of the service protocol: typed requests and responses,
//! encoded into the payload bytes of [`crate::wire`] frames.
//!
//! Stage submissions travel as a [`WireStage`] — a declarative, fully
//! serializable mirror of the facade's `StageBuilder` inputs (cell
//! reference, load topology, input event or upstream dependency, ordering
//! edges, backend choice). Results come back as [`WireReport`]s carrying the
//! scalar measurements of a `StageReport`; waveforms stay server-side, where
//! the session resolves cross-stage handoffs, so remote and in-process
//! analysis of the same path produce bit-identical numbers.
//!
//! Dependency handles are plain `u64` submission indices. A remote client
//! cannot reserve slots, so a wire handle can only name an
//! *already-accepted* submission — forward references and cycles are
//! unrepresentable on the wire, and the server validates indices against the
//! session it owns.

use crate::wire::{Decoder, Encoder, WireError};

/// Session options a client carries across the wire when opening a session
/// ([`Request::Hello`]). The deadline is a *duration* (nanoseconds) measured
/// from session creation on the server, which makes it exactly expressible
/// remotely — `SessionOptions::timeout` is its facade-side twin. The far-end
/// propagation fidelity is not carried; the server's default applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireSessionOptions {
    /// Wall-clock budget in nanoseconds, measured from the server-side
    /// session opening. `None` never expires.
    pub timeout_nanos: Option<u64>,
    /// Upper bound on concurrently running stages; `0` means one per worker
    /// thread.
    pub max_in_flight: u64,
    /// Whether capable backends receive the producer's full sampled waveform
    /// on cross-stage handoffs.
    pub sampled_handoff: bool,
}

impl WireSessionOptions {
    /// The facade defaults, as they travel on the wire.
    pub fn defaults() -> Self {
        WireSessionOptions {
            timeout_nanos: None,
            max_in_flight: 0,
            sampled_handoff: true,
        }
    }

    fn encode(&self, e: &mut Encoder) {
        match self.timeout_nanos {
            None => e.bool(false),
            Some(nanos) => {
                e.bool(true);
                e.u64(nanos);
            }
        }
        e.u64(self.max_in_flight);
        e.bool(self.sampled_handoff);
    }

    fn decode(d: &mut Decoder) -> Option<Self> {
        let timeout_nanos = if d.bool()? { Some(d.u64()?) } else { None };
        Some(WireSessionOptions {
            timeout_nanos,
            max_in_flight: d.u64()?,
            sampled_handoff: d.bool()?,
        })
    }
}

/// Which driver cell a stage uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireCellRef {
    /// A real cell, characterized (or fetched from the shared on-disk
    /// characterization cache) by the server's library at the given drive
    /// strength.
    Characterize {
        /// Drive strength multiplier (e.g. `75.0` for a 75X inverter).
        size: f64,
    },
    /// The workspace's deterministic synthetic test cell: an affine timing
    /// table scaled by drive strength, no characterization transients. Used
    /// by tests and benches so remote runs stay characterization-free.
    Synthetic {
        /// Drive strength multiplier.
        size: f64,
        /// Driver on-resistance (ohms).
        on_resistance: f64,
    },
}

impl WireCellRef {
    fn encode(&self, e: &mut Encoder) {
        match self {
            WireCellRef::Characterize { size } => {
                e.u8(0);
                e.f64(*size);
            }
            WireCellRef::Synthetic {
                size,
                on_resistance,
            } => {
                e.u8(1);
                e.f64(*size);
                e.f64(*on_resistance);
            }
        }
    }

    fn decode(d: &mut Decoder) -> Option<Self> {
        match d.u8()? {
            0 => Some(WireCellRef::Characterize { size: d.f64()? }),
            1 => Some(WireCellRef::Synthetic {
                size: d.f64()?,
                on_resistance: d.f64()?,
            }),
            _ => None,
        }
    }
}

/// A uniform RLC line on the wire (total resistance, inductance,
/// capacitance, physical length — the `RlcLine` constructor arguments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireLine {
    /// Total line resistance (ohms).
    pub resistance: f64,
    /// Total line inductance (henries).
    pub inductance: f64,
    /// Total line capacitance (farads).
    pub capacitance: f64,
    /// Physical length (meters).
    pub length: f64,
}

impl WireLine {
    fn encode(&self, e: &mut Encoder) {
        e.f64(self.resistance);
        e.f64(self.inductance);
        e.f64(self.capacitance);
        e.f64(self.length);
    }

    fn decode(d: &mut Decoder) -> Option<Self> {
        Some(WireLine {
            resistance: d.f64()?,
            inductance: d.f64()?,
            capacitance: d.f64()?,
            length: d.f64()?,
        })
    }
}

/// One branch of a tree topology on the wire. Branches are listed in
/// insertion order; a parent always precedes its children, so `parent`
/// indices point strictly backwards.
#[derive(Debug, Clone, PartialEq)]
pub struct WireBranch {
    /// Index of the parent branch, `None` for the root branch at the
    /// driving point.
    pub parent: Option<u64>,
    /// The branch's line segment.
    pub line: WireLine,
    /// The named sink terminating this branch, with its load capacitance
    /// (farads), when the branch ends in a receiver.
    pub sink: Option<(String, f64)>,
}

/// The aggressor drive of a coupled bus on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAggressor {
    /// Switching direction: `0` quiet, `1` same direction, `2` opposite.
    pub switching: u8,
    /// Aggressor ramp transition time (seconds, 0–100 %).
    pub slew: f64,
    /// Absolute start time of the aggressor ramp (seconds).
    pub delay: f64,
    /// Aggressor swing (volts).
    pub amplitude: f64,
}

impl WireAggressor {
    fn encode(&self, e: &mut Encoder) {
        e.u8(self.switching);
        e.f64(self.slew);
        e.f64(self.delay);
        e.f64(self.amplitude);
    }

    fn decode(d: &mut Decoder) -> Option<Self> {
        Some(WireAggressor {
            switching: d.u8()?,
            slew: d.f64()?,
            delay: d.f64()?,
            amplitude: d.f64()?,
        })
    }
}

/// A load topology on the wire — the serializable mirror of the facade's
/// physical load models.
#[derive(Debug, Clone, PartialEq)]
pub enum WireLoad {
    /// A lumped capacitor (farads).
    Lumped {
        /// The capacitance.
        c: f64,
    },
    /// An O'Brien–Savarino RC pi load.
    Pi {
        /// Near-end capacitance (farads).
        c_near: f64,
        /// Series resistance (ohms).
        resistance: f64,
        /// Far-end capacitance (farads).
        c_far: f64,
    },
    /// A distributed RLC line terminated by a fan-out capacitance.
    Line {
        /// The line.
        line: WireLine,
        /// Far-end load capacitance (farads).
        c_load: f64,
    },
    /// A multi-sink RLC tree.
    Tree {
        /// The branches, parents before children.
        branches: Vec<WireBranch>,
    },
    /// A victim/aggressor coupled bus.
    Bus {
        /// The victim line (driven by the stage's driver).
        victim: WireLine,
        /// The aggressor line.
        aggressor: WireLine,
        /// Total line-to-line coupling capacitance (farads).
        coupling_capacitance: f64,
        /// Total mutual inductance (henries).
        mutual_inductance: f64,
        /// Victim far-end load capacitance (farads).
        victim_load: f64,
        /// Aggressor far-end load capacitance (farads).
        aggressor_load: f64,
        /// The aggressor's drive.
        drive: WireAggressor,
    },
}

impl WireLoad {
    fn encode(&self, e: &mut Encoder) {
        match self {
            WireLoad::Lumped { c } => {
                e.u8(0);
                e.f64(*c);
            }
            WireLoad::Pi {
                c_near,
                resistance,
                c_far,
            } => {
                e.u8(1);
                e.f64(*c_near);
                e.f64(*resistance);
                e.f64(*c_far);
            }
            WireLoad::Line { line, c_load } => {
                e.u8(2);
                line.encode(e);
                e.f64(*c_load);
            }
            WireLoad::Tree { branches } => {
                e.u8(3);
                e.u64(branches.len() as u64);
                for b in branches {
                    match b.parent {
                        None => e.bool(false),
                        Some(p) => {
                            e.bool(true);
                            e.u64(p);
                        }
                    }
                    b.line.encode(e);
                    match &b.sink {
                        None => e.bool(false),
                        Some((name, c_load)) => {
                            e.bool(true);
                            e.string(name);
                            e.f64(*c_load);
                        }
                    }
                }
            }
            WireLoad::Bus {
                victim,
                aggressor,
                coupling_capacitance,
                mutual_inductance,
                victim_load,
                aggressor_load,
                drive,
            } => {
                e.u8(4);
                victim.encode(e);
                aggressor.encode(e);
                e.f64(*coupling_capacitance);
                e.f64(*mutual_inductance);
                e.f64(*victim_load);
                e.f64(*aggressor_load);
                drive.encode(e);
            }
        }
    }

    fn decode(d: &mut Decoder) -> Option<Self> {
        match d.u8()? {
            0 => Some(WireLoad::Lumped { c: d.f64()? }),
            1 => Some(WireLoad::Pi {
                c_near: d.f64()?,
                resistance: d.f64()?,
                c_far: d.f64()?,
            }),
            2 => Some(WireLoad::Line {
                line: WireLine::decode(d)?,
                c_load: d.f64()?,
            }),
            3 => {
                let n = d.u64()? as usize;
                // A branch encodes to >= 34 bytes; cap pre-allocation by the
                // remaining payload, so a corrupt count cannot force a huge
                // allocation before decoding fails.
                let mut branches = Vec::new();
                for _ in 0..n {
                    let parent = if d.bool()? { Some(d.u64()?) } else { None };
                    let line = WireLine::decode(d)?;
                    let sink = if d.bool()? {
                        Some((d.string()?, d.f64()?))
                    } else {
                        None
                    };
                    branches.push(WireBranch { parent, line, sink });
                }
                Some(WireLoad::Tree { branches })
            }
            4 => Some(WireLoad::Bus {
                victim: WireLine::decode(d)?,
                aggressor: WireLine::decode(d)?,
                coupling_capacitance: d.f64()?,
                mutual_inductance: d.f64()?,
                victim_load: d.f64()?,
                aggressor_load: d.f64()?,
                drive: WireAggressor::decode(d)?,
            }),
            _ => None,
        }
    }
}

/// Where a stage's input comes from, on the wire. Handles are submission
/// indices of previously accepted stages of the same remote session.
#[derive(Debug, Clone, PartialEq)]
pub enum WireInput {
    /// A fixed input ramp.
    Event {
        /// Input transition time (seconds, 0–100 %).
        slew: f64,
        /// Absolute ramp start time (seconds); `None` applies the
        /// `StageBuilder` default.
        delay: Option<f64>,
    },
    /// The measured primary far-end waveform of an earlier submission.
    FromFarEnd {
        /// Submission index of the producer.
        producer: u64,
    },
    /// The measured waveform at a named sink of an earlier submission.
    FromSink {
        /// Submission index of the producer.
        producer: u64,
        /// The sink name the producer's load must expose.
        sink: String,
    },
}

impl WireInput {
    /// The producer's submission index, for dependent inputs.
    pub fn producer(&self) -> Option<u64> {
        match self {
            WireInput::Event { .. } => None,
            WireInput::FromFarEnd { producer } => Some(*producer),
            WireInput::FromSink { producer, .. } => Some(*producer),
        }
    }

    fn encode(&self, e: &mut Encoder) {
        match self {
            WireInput::Event { slew, delay } => {
                e.u8(0);
                e.f64(*slew);
                match delay {
                    None => e.bool(false),
                    Some(v) => {
                        e.bool(true);
                        e.f64(*v);
                    }
                }
            }
            WireInput::FromFarEnd { producer } => {
                e.u8(1);
                e.u64(*producer);
            }
            WireInput::FromSink { producer, sink } => {
                e.u8(2);
                e.u64(*producer);
                e.string(sink);
            }
        }
    }

    fn decode(d: &mut Decoder) -> Option<Self> {
        match d.u8()? {
            0 => {
                let slew = d.f64()?;
                let delay = if d.bool()? { Some(d.f64()?) } else { None };
                Some(WireInput::Event { slew, delay })
            }
            1 => Some(WireInput::FromFarEnd { producer: d.u64()? }),
            2 => Some(WireInput::FromSink {
                producer: d.u64()?,
                sink: d.string()?,
            }),
            _ => None,
        }
    }
}

/// Which backend analyzes the stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireBackend {
    /// The engine's default backend.
    #[default]
    Default,
    /// The paper's analytic effective-capacitance flow.
    Analytic,
    /// The golden transient simulation.
    Spice,
}

/// One stage submission on the wire — everything the server needs to rebuild
/// a `Stage` against its own library and session.
#[derive(Debug, Clone, PartialEq)]
pub struct WireStage {
    /// Stage label (used in reports and error messages).
    pub label: String,
    /// The driver cell.
    pub cell: WireCellRef,
    /// The load topology.
    pub load: WireLoad,
    /// The input source.
    pub input: WireInput,
    /// Scheduling-only dependencies (submission indices).
    pub after: Vec<u64>,
    /// Backend choice.
    pub backend: WireBackend,
}

impl WireStage {
    /// Every submission index this stage depends on (producer + ordering
    /// edges).
    pub fn dependencies(&self) -> impl Iterator<Item = u64> + '_ {
        self.input
            .producer()
            .into_iter()
            .chain(self.after.iter().copied())
    }

    /// Whether the stage has no dependencies at all — the class the shard
    /// coordinator may transparently resubmit to a surviving shard when a
    /// worker dies.
    pub fn is_independent(&self) -> bool {
        self.input.producer().is_none() && self.after.is_empty()
    }

    fn encode(&self, e: &mut Encoder) {
        e.string(&self.label);
        self.cell.encode(e);
        self.load.encode(e);
        self.input.encode(e);
        e.u64_slice(&self.after);
        e.u8(match self.backend {
            WireBackend::Default => 0,
            WireBackend::Analytic => 1,
            WireBackend::Spice => 2,
        });
    }

    fn decode(d: &mut Decoder) -> Option<Self> {
        Some(WireStage {
            label: d.string()?,
            cell: WireCellRef::decode(d)?,
            load: WireLoad::decode(d)?,
            input: WireInput::decode(d)?,
            after: d.u64_vec()?,
            backend: match d.u8()? {
                0 => WireBackend::Default,
                1 => WireBackend::Analytic,
                2 => WireBackend::Spice,
                _ => return None,
            },
        })
    }

    /// A routing key for the shard coordinator: the FNV of the cell + load
    /// description, so stages of the same net/cell land on the same shard
    /// (and share its in-process characterization).
    pub fn routing_key(&self) -> u64 {
        let mut e = Encoder::new();
        self.cell.encode(&mut e);
        self.load.encode(&mut e);
        crate::wire::fnv(&e.0)
    }
}

/// The scalar measurements of a completed stage, on the wire. Waveforms stay
/// server-side; every `f64` round-trips as its exact bit pattern, so remote
/// reports match in-process ones bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct WireReport {
    /// Stage label.
    pub label: String,
    /// Name of the backend that produced the report.
    pub backend: String,
    /// 50 % driver-output delay from the input's 50 % crossing (seconds).
    pub delay: f64,
    /// 10–90 % driver-output transition time (seconds).
    pub slew: f64,
    /// Absolute time of the input's 50 % crossing (seconds).
    pub input_t50: f64,
    /// Supply voltage (volts).
    pub vdd: f64,
    /// Whether the two-ramp waveform was selected.
    pub used_two_ramp: bool,
    /// Wall-clock time the analysis took server-side (seconds).
    pub elapsed_seconds: f64,
}

impl WireReport {
    fn encode(&self, e: &mut Encoder) {
        e.string(&self.label);
        e.string(&self.backend);
        e.f64(self.delay);
        e.f64(self.slew);
        e.f64(self.input_t50);
        e.f64(self.vdd);
        e.bool(self.used_two_ramp);
        e.f64(self.elapsed_seconds);
    }

    fn decode(d: &mut Decoder) -> Option<Self> {
        Some(WireReport {
            label: d.string()?,
            backend: d.string()?,
            delay: d.f64()?,
            slew: d.f64()?,
            input_t50: d.f64()?,
            vdd: d.f64()?,
            used_two_ramp: d.bool()?,
            elapsed_seconds: d.f64()?,
        })
    }
}

/// One static-audit finding on the wire — the serializable mirror of the
/// facade's `Diagnostic`. Severity travels as a tag (`0` info, `1` warning,
/// `2` error) and the strings round-trip verbatim, so a remote `LINT` pass
/// returns diagnostics bit-identical to the in-process audit of the same
/// stage.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WireDiagnostic {
    /// Stable lint code (e.g. `"L001"`).
    pub code: String,
    /// Severity tag: `0` info, `1` warning, `2` error.
    pub severity: u8,
    /// The node or element the finding is anchored to; empty when global.
    pub locus: String,
    /// Human-readable explanation.
    pub message: String,
}

impl WireDiagnostic {
    fn encode(&self, e: &mut Encoder) {
        e.string(&self.code);
        e.u8(self.severity);
        e.string(&self.locus);
        e.string(&self.message);
    }

    fn decode(d: &mut Decoder) -> Option<Self> {
        let code = d.string()?;
        let severity = d.u8()?;
        if severity > 2 {
            return None;
        }
        Some(WireDiagnostic {
            code,
            severity,
            locus: d.string()?,
            message: d.string()?,
        })
    }
}

/// A per-stage result on the wire: the report, or a stable response code
/// plus the error's display string.
pub type WireOutcome = Result<WireReport, (u16, String)>;

fn encode_outcome(outcome: &WireOutcome, e: &mut Encoder) {
    match outcome {
        Ok(report) => {
            e.bool(true);
            report.encode(e);
        }
        Err((code, message)) => {
            e.bool(false);
            e.u16(*code);
            e.string(message);
        }
    }
}

fn decode_outcome(d: &mut Decoder) -> Option<WireOutcome> {
    if d.bool()? {
        Some(Ok(WireReport::decode(d)?))
    } else {
        Some(Err((d.u16()?, d.string()?)))
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens the connection's analysis session. Must be the first request;
    /// the session deadline clock (if any) starts here.
    Hello {
        /// The session options.
        options: WireSessionOptions,
    },
    /// Submits one stage. The server replies [`Response::Submitted`] with
    /// the stage's submission index, or [`Response::Error`] (in which case
    /// no index is consumed).
    Submit(Box<WireStage>),
    /// Asks for the next completed stage, **blocking** until one finishes.
    /// Replies [`Response::Report`], or [`Response::NoPending`] when every
    /// accepted submission has already been reported.
    NextReport,
    /// Non-blocking sibling of [`Request::NextReport`]: replies
    /// [`Response::Report`], [`Response::NotReady`] (work still running) or
    /// [`Response::NoPending`] (nothing outstanding). This is what the shard
    /// coordinator uses to multiplex one client across many workers without
    /// parking a thread per shard.
    PollReport,
    /// Streams every not-yet-reported outcome as [`Response::Report`]
    /// frames, then [`Response::Done`].
    WaitAll,
    /// Cancels everything that has not started running. Replies
    /// [`Response::CancelAck`]; cancelled stages still produce their typed
    /// outcome frames.
    Cancel,
    /// Liveness probe; replies [`Response::Pong`].
    Ping,
    /// Ends the conversation; the server replies [`Response::Bye`] and
    /// closes the connection.
    Close,
    /// Runs the static circuit audit over the stage **without** submitting
    /// it for analysis — nothing is simulated, no matrix is factorized, no
    /// submission index is consumed, and the engine's lint level is ignored
    /// (an explicit audit always reports everything it finds). Replies
    /// [`Response::LintReport`] with every finding, or [`Response::Error`]
    /// when the stage description itself cannot be rebuilt.
    Lint(Box<WireStage>),
}

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Request::Hello { options } => {
                e.u8(1);
                options.encode(&mut e);
            }
            Request::Submit(stage) => {
                e.u8(2);
                stage.encode(&mut e);
            }
            Request::NextReport => e.u8(3),
            Request::PollReport => e.u8(4),
            Request::WaitAll => e.u8(5),
            Request::Cancel => e.u8(6),
            Request::Ping => e.u8(7),
            Request::Close => e.u8(8),
            Request::Lint(stage) => {
                e.u8(9);
                stage.encode(&mut e);
            }
        }
        e.0
    }

    /// Decodes a frame payload as a request.
    ///
    /// # Errors
    /// [`WireError::Malformed`] on an unknown tag, a short payload, or
    /// trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut d = Decoder::new(payload);
        let request = (|| {
            let request = match d.u8()? {
                1 => Request::Hello {
                    options: WireSessionOptions::decode(&mut d)?,
                },
                2 => Request::Submit(Box::new(WireStage::decode(&mut d)?)),
                3 => Request::NextReport,
                4 => Request::PollReport,
                5 => Request::WaitAll,
                6 => Request::Cancel,
                7 => Request::Ping,
                8 => Request::Close,
                9 => Request::Lint(Box::new(WireStage::decode(&mut d)?)),
                _ => return None,
            };
            Some(request)
        })()
        .ok_or_else(|| WireError::Malformed {
            what: "request".into(),
        })?;
        if !d.done() {
            return Err(WireError::Malformed {
                what: "request carries trailing bytes".into(),
            });
        }
        Ok(request)
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The session is open.
    HelloAck,
    /// The stage was accepted at this submission index.
    Submitted {
        /// The stage's submission index (the wire handle dependents use).
        index: u64,
    },
    /// One completed stage.
    Report {
        /// The stage's submission index.
        index: u64,
        /// The result.
        outcome: WireOutcome,
    },
    /// Nothing has completed yet ([`Request::PollReport`] only).
    NotReady,
    /// Every accepted submission has been reported.
    NoPending,
    /// Ends a [`Request::WaitAll`] stream.
    Done {
        /// Number of reports streamed by this `WaitAll`.
        count: u64,
    },
    /// The cancellation was applied.
    CancelAck,
    /// Liveness reply.
    Pong,
    /// The server acknowledges [`Request::Close`] and will close the
    /// connection.
    Bye,
    /// The request failed with a stable response code (see
    /// [`crate::error::code`]).
    Error {
        /// The stable response code.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// The findings of a [`Request::Lint`] audit, in emission order. An
    /// empty list is a clean bill of health.
    LintReport {
        /// Every diagnostic the audit produced.
        diagnostics: Vec<WireDiagnostic>,
    },
    /// A batch of completed stages in one frame — what [`Request::WaitAll`]
    /// answers with, so draining a wide session costs one frame, not one
    /// per stage. The per-stage [`Response::Report`] streaming path
    /// (`NextReport` / `PollReport`) is unchanged.
    Reports {
        /// `(submission index, outcome)` pairs, in completion order.
        reports: Vec<(u64, WireOutcome)>,
    },
}

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Response::HelloAck => e.u8(1),
            Response::Submitted { index } => {
                e.u8(2);
                e.u64(*index);
            }
            Response::Report { index, outcome } => {
                e.u8(3);
                e.u64(*index);
                encode_outcome(outcome, &mut e);
            }
            Response::NotReady => e.u8(4),
            Response::NoPending => e.u8(5),
            Response::Done { count } => {
                e.u8(6);
                e.u64(*count);
            }
            Response::CancelAck => e.u8(7),
            Response::Pong => e.u8(8),
            Response::Bye => e.u8(9),
            Response::Error { code, message } => {
                e.u8(10);
                e.u16(*code);
                e.string(message);
            }
            Response::LintReport { diagnostics } => {
                e.u8(11);
                e.u64(diagnostics.len() as u64);
                for diagnostic in diagnostics {
                    diagnostic.encode(&mut e);
                }
            }
            Response::Reports { reports } => {
                e.u8(12);
                e.u64(reports.len() as u64);
                for (index, outcome) in reports {
                    e.u64(*index);
                    encode_outcome(outcome, &mut e);
                }
            }
        }
        e.0
    }

    /// Decodes a frame payload as a response.
    ///
    /// # Errors
    /// [`WireError::Malformed`] on an unknown tag, a short payload, or
    /// trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut d = Decoder::new(payload);
        let response = (|| {
            let response = match d.u8()? {
                1 => Response::HelloAck,
                2 => Response::Submitted { index: d.u64()? },
                3 => Response::Report {
                    index: d.u64()?,
                    outcome: decode_outcome(&mut d)?,
                },
                4 => Response::NotReady,
                5 => Response::NoPending,
                6 => Response::Done { count: d.u64()? },
                7 => Response::CancelAck,
                8 => Response::Pong,
                9 => Response::Bye,
                10 => Response::Error {
                    code: d.u16()?,
                    message: d.string()?,
                },
                11 => {
                    let n = d.u64()? as usize;
                    // A diagnostic encodes to >= 13 bytes; decoding fails
                    // fast on a corrupt count, so no pre-allocation by `n`.
                    let mut diagnostics = Vec::new();
                    for _ in 0..n {
                        diagnostics.push(WireDiagnostic::decode(&mut d)?);
                    }
                    Response::LintReport { diagnostics }
                }
                12 => {
                    let n = d.u64()? as usize;
                    // An entry encodes to >= 12 bytes; decoding fails fast
                    // on a corrupt count, so no pre-allocation by `n`.
                    let mut reports = Vec::new();
                    for _ in 0..n {
                        reports.push((d.u64()?, decode_outcome(&mut d)?));
                    }
                    Response::Reports { reports }
                }
                _ => return None,
            };
            Some(response)
        })()
        .ok_or_else(|| WireError::Malformed {
            what: "response".into(),
        })?;
        if !d.done() {
            return Err(WireError::Malformed {
                what: "response carries trailing bytes".into(),
            });
        }
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stage() -> WireStage {
        WireStage {
            label: "bus/seg3".into(),
            cell: WireCellRef::Characterize { size: 100.0 },
            load: WireLoad::Bus {
                victim: WireLine {
                    resistance: 72.44,
                    inductance: 5.14e-9,
                    capacitance: 1.10e-12,
                    length: 5.0e-3,
                },
                aggressor: WireLine {
                    resistance: 72.44,
                    inductance: 5.14e-9,
                    capacitance: 1.10e-12,
                    length: 5.0e-3,
                },
                coupling_capacitance: 0.4e-12,
                mutual_inductance: 1.0e-9,
                victim_load: 10e-15,
                aggressor_load: 10e-15,
                drive: WireAggressor {
                    switching: 2,
                    slew: 100e-12,
                    delay: 50e-12,
                    amplitude: 1.8,
                },
            },
            input: WireInput::FromSink {
                producer: 7,
                sink: "rx_far".into(),
            },
            after: vec![2, 5],
            backend: WireBackend::Analytic,
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::Hello {
                options: WireSessionOptions {
                    timeout_nanos: Some(250_000_000),
                    max_in_flight: 4,
                    sampled_handoff: false,
                },
            },
            Request::Hello {
                options: WireSessionOptions::defaults(),
            },
            Request::Submit(Box::new(sample_stage())),
            Request::Submit(Box::new(WireStage {
                label: "launch".into(),
                cell: WireCellRef::Synthetic {
                    size: 75.0,
                    on_resistance: 70.0,
                },
                load: WireLoad::Tree {
                    branches: vec![
                        WireBranch {
                            parent: None,
                            line: WireLine {
                                resistance: 40.0,
                                inductance: 2e-9,
                                capacitance: 0.5e-12,
                                length: 2e-3,
                            },
                            sink: None,
                        },
                        WireBranch {
                            parent: Some(0),
                            line: WireLine {
                                resistance: 20.0,
                                inductance: 1e-9,
                                capacitance: 0.3e-12,
                                length: 1e-3,
                            },
                            sink: Some(("rx0".into(), 15e-15)),
                        },
                    ],
                },
                input: WireInput::Event {
                    slew: 100e-12,
                    delay: None,
                },
                after: vec![],
                backend: WireBackend::Default,
            })),
            Request::NextReport,
            Request::PollReport,
            Request::WaitAll,
            Request::Cancel,
            Request::Ping,
            Request::Close,
            Request::Lint(Box::new(sample_stage())),
        ];
        for request in requests {
            let decoded = Request::decode(&request.encode()).unwrap();
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn responses_round_trip_bit_identically() {
        let report = WireReport {
            label: "launch".into(),
            backend: "analytic-ceff".into(),
            delay: 1.234567890123e-10,
            slew: 9.87e-11,
            input_t50: 7.0e-11,
            vdd: 1.8,
            used_two_ramp: true,
            elapsed_seconds: 0.0123,
        };
        let responses = vec![
            Response::HelloAck,
            Response::Submitted { index: 42 },
            Response::Report {
                index: 3,
                outcome: Ok(report.clone()),
            },
            Response::Report {
                index: 4,
                outcome: Err((12, "stage 'x' was poisoned".into())),
            },
            Response::NotReady,
            Response::NoPending,
            Response::Done { count: 9 },
            Response::CancelAck,
            Response::Pong,
            Response::Bye,
            Response::Error {
                code: 100,
                message: "submit before hello".into(),
            },
            Response::LintReport {
                diagnostics: vec![],
            },
            Response::LintReport {
                diagnostics: vec![
                    WireDiagnostic {
                        code: "L001".into(),
                        severity: 2,
                        locus: "n3".into(),
                        message: "node `n3` is floating".into(),
                    },
                    WireDiagnostic {
                        code: "L030".into(),
                        severity: 0,
                        locus: String::new(),
                        message: "sparse kernel degraded to dense".into(),
                    },
                    WireDiagnostic {
                        code: "L023".into(),
                        severity: 1,
                        locus: "R7".into(),
                        message: "near-zero resistance".into(),
                    },
                ],
            },
            Response::Reports { reports: vec![] },
            Response::Reports {
                reports: vec![
                    (0, Ok(report.clone())),
                    (7, Err((12, "stage 'x' was poisoned".into()))),
                    (3, Ok(report.clone())),
                ],
            },
        ];
        for response in responses {
            let decoded = Response::decode(&response.encode()).unwrap();
            assert_eq!(decoded, response);
        }
        // Bit-identity of the floats, explicitly.
        if let Response::Report { outcome: Ok(r), .. } = Response::decode(
            &Response::Report {
                index: 0,
                outcome: Ok(report.clone()),
            }
            .encode(),
        )
        .unwrap()
        {
            assert_eq!(r.delay.to_bits(), report.delay.to_bits());
            assert_eq!(r.slew.to_bits(), report.slew.to_bits());
            assert_eq!(r.input_t50.to_bits(), report.input_t50.to_bits());
        } else {
            panic!("expected a report");
        }
    }

    #[test]
    fn malformed_payloads_are_typed_not_panics() {
        // Unknown tags.
        assert!(matches!(
            Request::decode(&[99]),
            Err(WireError::Malformed { .. })
        ));
        assert!(matches!(
            Response::decode(&[99]),
            Err(WireError::Malformed { .. })
        ));
        // Empty payloads.
        assert!(Request::decode(&[]).is_err());
        assert!(Response::decode(&[]).is_err());
        // Trailing bytes.
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert!(matches!(
            Request::decode(&bytes),
            Err(WireError::Malformed { what }) if what.contains("trailing")
        ));
        // Truncated submissions.
        let full = Request::Submit(Box::new(sample_stage())).encode();
        for cut in [1, 5, full.len() / 2, full.len() - 1] {
            assert!(Request::decode(&full[..cut]).is_err());
        }
        // An out-of-range severity tag is malformed, not silently accepted.
        let bad = Response::LintReport {
            diagnostics: vec![WireDiagnostic {
                code: "L001".into(),
                severity: 3,
                locus: "n".into(),
                message: "m".into(),
            }],
        }
        .encode();
        assert!(matches!(
            Response::decode(&bad),
            Err(WireError::Malformed { .. })
        ));
        // A batch whose count outruns its entries fails fast, untruncated
        // entries and all — no panic, no huge pre-allocation.
        let mut lying_count = Encoder::default();
        lying_count.u8(12);
        lying_count.u64(u64::MAX);
        lying_count.u64(4);
        assert!(Response::decode(&lying_count.0).is_err());
        let full = Response::Reports {
            reports: vec![(4, Err((12, "poisoned".into())))],
        }
        .encode();
        for cut in [1, 9, full.len() / 2, full.len() - 1] {
            assert!(Response::decode(&full[..cut]).is_err());
        }
    }

    #[test]
    fn dependencies_and_routing_keys() {
        let stage = sample_stage();
        assert_eq!(stage.dependencies().collect::<Vec<_>>(), vec![7, 2, 5]);
        assert!(!stage.is_independent());

        let mut independent = stage.clone();
        independent.input = WireInput::Event {
            slew: 100e-12,
            delay: Some(20e-12),
        };
        independent.after.clear();
        assert!(independent.is_independent());

        // The routing key depends on cell + load, not on label or input.
        let mut relabeled = independent.clone();
        relabeled.label = "other".into();
        assert_eq!(independent.routing_key(), relabeled.routing_key());
        let mut other_cell = independent.clone();
        other_cell.cell = WireCellRef::Characterize { size: 50.0 };
        assert_ne!(independent.routing_key(), other_cell.routing_key());
    }
}
