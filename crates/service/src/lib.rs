//! `rlc-service`: a sharded timing-analysis server over the
//! `AnalysisSession`.
//!
//! This crate turns the in-process [`rlc_ceff_suite::TimingEngine`] facade
//! into a network service with zero external dependencies:
//!
//! * [`wire`] — a hand-rolled, length-prefixed binary frame format
//!   (magic, protocol version, FNV-1a payload checksum) with typed,
//!   recoverable decode errors;
//! * [`protocol`] — the request/response messages riding in those frames:
//!   stage submissions carry the full load topology, driver-cell reference
//!   and input event (or a dependency handle), responses stream completed
//!   stage reports back in completion order;
//! * [`error`] — stable `u16` response codes for every engine and
//!   protocol failure, plus the client-facing [`ServiceError`];
//! * [`server`] — a single-process [`Server`]: one TCP listener, one
//!   `AnalysisSession` per client connection, a shared characterization
//!   library;
//! * [`shard`] — the [`ShardServer`] coordinator: N worker *processes*
//!   sharing one on-disk characterization cache, stages routed by
//!   dependency affinity and topology hash, worker death handled by
//!   transparent resubmission (independent stages) or typed `ShardLost`
//!   outcomes (dependent stages);
//! * [`client`] — the [`ServiceClient`] library mirroring the facade's
//!   `StageBuilder` / `StageHandle` API, so an in-process analysis ports
//!   to remote mode with a handful of renames.
//!
//! Because the wire format round-trips every `f64` through its exact bit
//! pattern and the workers run the very same `AnalysisSession` code, a
//! remote analysis is bit-identical to the in-process one.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod error;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod wire;

pub use client::{
    RemoteCell, RemoteDiagnostic, RemoteHandle, RemoteLoad, RemoteReport, RemoteStage,
    RemoteStageBuilder, ServiceClient,
};
pub use error::{code, code_name, ServiceError};
pub use server::Server;
pub use shard::{maybe_run_worker_from_env, ShardServer, WorkerPool};
pub use wire::{WireError, PROTOCOL_VERSION};
