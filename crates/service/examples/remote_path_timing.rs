//! Remote path timing: the `path_timing` example, ported to the timing
//! service.
//!
//! This runs the same 4-stage repeater path twice — once through an
//! in-process `AnalysisSession`, once through a [`ServiceClient`] talking
//! to a sharded server fleet — and checks the per-stage results agree to
//! better than a nanosecond (they are in fact bit-identical: the wire
//! format round-trips `f64` bit patterns and the workers run the same
//! engine code).
//!
//! By default the example spawns its own 2-shard fleet from its own
//! executable. Point `RLC_SERVICE_ADDR` at a running `rlc-serviced` to use
//! an external server instead (that is how CI exercises the daemon binary
//! end-to-end). `RLC_CACHE_DIR` warm-starts characterization as usual —
//! and is shared with the self-spawned workers, so the three repeater
//! cells are characterized exactly once per cache lifetime.
//!
//! Run with: `cargo run --release -p rlc-service --example remote_path_timing`

use std::path::PathBuf;

use rlc_ceff_suite::interconnect::prelude::*;
use rlc_ceff_suite::interconnect::{CoupledBus, RlcTree};
use rlc_ceff_suite::{
    AggressorSpec, AggressorSwitching, CoupledBusLoad, DistributedRlcLoad, EngineConfig,
    LumpedCapLoad, RlcTreeLoad, Stage, TimingEngine,
};
use rlc_service::{
    maybe_run_worker_from_env, RemoteCell, RemoteLoad, RemoteStage, ServiceClient, ShardServer,
};

const PARITY_TOLERANCE: f64 = 1e-9;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // When the coordinator re-invokes this executable as a shard worker,
    // serve and never reach the example body.
    if maybe_run_worker_from_env() {
        return Ok(());
    }

    let cache_dir: Option<PathBuf> = std::env::var_os("RLC_CACHE_DIR").map(PathBuf::from);

    // The same nets as examples/path_timing.rs.
    let extractor = EmpiricalExtractor::cmos018();
    let line = extractor.extract(&WireGeometry::new(mm(5.0), um(1.6)));
    let trunk = extractor.extract(&WireGeometry::new(mm(2.0), um(0.8)));
    let short_branch = extractor.extract(&WireGeometry::new(mm(1.0), um(0.8)));
    let long_branch = extractor.extract(&WireGeometry::new(mm(3.0), um(0.8)));
    let mut tree = RlcTree::new();
    let t = tree.add_branch(None, trunk);
    let near = tree.add_branch(Some(t), short_branch);
    let far = tree.add_branch(Some(t), long_branch);
    tree.set_sink(near, "rx_near", ff(15.0));
    tree.set_sink(far, "rx_far", ff(15.0));
    let bus_line = extractor.extract(&WireGeometry::new(mm(4.0), um(1.6)));
    let bus = CoupledBus::symmetric(
        bus_line,
        0.3 * bus_line.capacitance(),
        0.2 * bus_line.inductance(),
        ff(10.0),
    );
    let aggressor = AggressorSpec::new(
        AggressorSwitching::OppositeDirection,
        ps(100.0),
        ps(50.0),
        1.8,
    )?;

    // ---- In-process reference ------------------------------------------
    let mut config = EngineConfig::builder();
    if let Some(dir) = &cache_dir {
        config = config.cache_dir(dir);
    }
    let engine = TimingEngine::new(config.build());
    let mut library = engine.open_library()?;
    let strong = library.get_or_characterize(75.0)?;
    let wide = library.get_or_characterize(100.0)?;
    let receiver = library.get_or_characterize(50.0)?;

    let mut session = engine.session();
    let launch = session.submit(
        Stage::builder(strong.clone(), DistributedRlcLoad::new(line, ff(10.0))?)
            .label("launch")
            .input_slew(ps(100.0))
            .build()?,
    )?;
    let fork = session.submit(
        Stage::builder(strong, RlcTreeLoad::new(tree.clone())?)
            .label("fork")
            .input_from(launch)
            .build()?,
    )?;
    let bus_stage = session.submit(
        Stage::builder(wide, CoupledBusLoad::new(bus, aggressor)?)
            .label("bus")
            .input_from_sink(fork, "rx_far")
            .build()?,
    )?;
    session.submit(
        Stage::builder(receiver, LumpedCapLoad::new(ff(200.0))?)
            .label("capture")
            .input_from_sink(bus_stage, "victim")
            .build()?,
    )?;
    let mut local = Vec::new();
    for (handle, outcome) in session.wait_all() {
        local.push(
            outcome.map_err(|e| format!("in-process stage #{} failed: {e}", handle.index()))?,
        );
    }

    // ---- Remote run ----------------------------------------------------
    // An external daemon (CI) or a self-spawned 2-shard fleet.
    let external = std::env::var("RLC_SERVICE_ADDR").ok();
    let fleet;
    let addr = match &external {
        Some(addr) => {
            println!("using external timing service at {addr}");
            addr.clone()
        }
        None => {
            let spawned = ShardServer::spawn(
                "127.0.0.1:0",
                2,
                cache_dir.as_deref(),
                None,
                &std::env::current_exe()?,
            )?;
            let (addr, pool) = spawned.serve_in_background();
            fleet = pool; // keep the workers alive for the whole run
            let _ = &fleet;
            println!("spawned a 2-shard fleet on {addr}");
            addr.to_string()
        }
    };

    let mut client = ServiceClient::connect(&*addr)?;
    let strong = RemoteCell::characterized(75.0);
    let launch = client.submit(
        RemoteStage::builder(strong, RemoteLoad::line(&line, ff(10.0)))
            .label("launch")
            .input_slew(ps(100.0))
            .build(),
    )?;
    let fork = client.submit(
        RemoteStage::builder(strong, RemoteLoad::from_tree(&tree))
            .label("fork")
            .input_from(launch)
            .build(),
    )?;
    let bus_stage = client.submit(
        RemoteStage::builder(
            RemoteCell::characterized(100.0),
            RemoteLoad::bus(&bus, aggressor),
        )
        .label("bus")
        .input_from_sink(fork, "rx_far")
        .build(),
    )?;
    client.submit(
        RemoteStage::builder(
            RemoteCell::characterized(50.0),
            RemoteLoad::lumped(ff(200.0)),
        )
        .label("capture")
        .input_from_sink(bus_stage, "victim")
        .build(),
    )?;
    let mut remote = Vec::new();
    for (i, outcome) in client.wait_all()?.into_iter().enumerate() {
        remote.push(outcome.map_err(|e| format!("remote stage #{i} failed: {e}"))?);
    }
    client.close()?;

    // ---- Parity --------------------------------------------------------
    println!();
    println!(
        "{:<10} {:>14} {:>14} {:>12}  {:>14} {:>14} {:>12}",
        "stage", "delay(ps)", "rmt delay(ps)", "|diff|(s)", "slew(ps)", "rmt slew(ps)", "|diff|(s)"
    );
    let mut worst: f64 = 0.0;
    for (l, r) in local.iter().zip(&remote) {
        let d_delay = (l.delay - r.delay).abs();
        let d_slew = (l.slew - r.slew).abs();
        let d_t50 = (l.input_t50 - r.input_t50).abs();
        worst = worst.max(d_delay).max(d_slew).max(d_t50);
        println!(
            "{:<10} {:>14.3} {:>14.3} {:>12.1e}  {:>14.3} {:>14.3} {:>12.1e}",
            l.label,
            l.delay * 1e12,
            r.delay * 1e12,
            d_delay,
            l.slew * 1e12,
            r.slew * 1e12,
            d_slew
        );
    }
    println!();
    println!("worst per-stage divergence: {worst:.3e} s (tolerance {PARITY_TOLERANCE:.0e} s)");
    assert!(
        worst <= PARITY_TOLERANCE,
        "remote path timing diverged from the in-process session by {worst:e} s"
    );
    println!("remote and in-process path timing agree.");
    Ok(())
}
