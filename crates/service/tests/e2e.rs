//! End-to-end: a real `ServiceClient` against a real multi-process shard
//! fleet (spawned from the `rlc-serviced` binary), checked bit-for-bit
//! against the in-process `AnalysisSession` on the same netlist.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use rlc_ceff_suite::interconnect::prelude::*;
use rlc_ceff_suite::interconnect::{CoupledBus, RlcTree};
use rlc_ceff_suite::{
    fixtures, AggressorSpec, AggressorSwitching, CoupledBusLoad, DistributedRlcLoad, EngineConfig,
    LumpedCapLoad, RlcTreeLoad, SessionOptions, Stage, TimingEngine,
};
use rlc_service::protocol::{Request, Response, WireSessionOptions};
use rlc_service::wire::{read_frame, write_frame};
use rlc_service::{code, RemoteCell, RemoteLoad, RemoteStage, Server, ServiceClient, ShardServer};

fn serviced_exe() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_rlc-serviced"))
}

/// The 4-net path topology shared by the in-process and remote runs
/// (synthetic cells keep it characterization-free and fast).
struct PathNets {
    line: RlcLine,
    tree: RlcTree,
    bus: CoupledBus,
    aggressor: AggressorSpec,
    capture_c: f64,
}

fn path_nets() -> PathNets {
    let extractor = EmpiricalExtractor::cmos018();
    let line = extractor.extract(&WireGeometry::new(mm(5.0), um(1.6)));
    let trunk = extractor.extract(&WireGeometry::new(mm(2.0), um(0.8)));
    let short_branch = extractor.extract(&WireGeometry::new(mm(1.0), um(0.8)));
    let long_branch = extractor.extract(&WireGeometry::new(mm(3.0), um(0.8)));
    let mut tree = RlcTree::new();
    let t = tree.add_branch(None, trunk);
    let near = tree.add_branch(Some(t), short_branch);
    let far = tree.add_branch(Some(t), long_branch);
    tree.set_sink(near, "rx_near", ff(15.0));
    tree.set_sink(far, "rx_far", ff(15.0));
    let bus_line = extractor.extract(&WireGeometry::new(mm(4.0), um(1.6)));
    let bus = CoupledBus::symmetric(
        bus_line,
        0.3 * bus_line.capacitance(),
        0.2 * bus_line.inductance(),
        ff(10.0),
    );
    let aggressor = AggressorSpec::new(
        AggressorSwitching::OppositeDirection,
        ps(100.0),
        ps(50.0),
        1.8,
    )
    .unwrap();
    PathNets {
        line,
        tree,
        bus,
        aggressor,
        capture_c: ff(200.0),
    }
}

const STRONG: (f64, f64) = (75.0, 70.0);
const WIDE: (f64, f64) = (100.0, 55.0);
const RECEIVER: (f64, f64) = (50.0, 105.0);

#[test]
fn four_stage_dependent_path_is_bit_identical_across_two_shards() {
    let nets = path_nets();

    // In-process reference.
    let engine = TimingEngine::new(EngineConfig::default());
    let strong = Arc::new(fixtures::synthetic_cell(STRONG.0, STRONG.1));
    let wide = Arc::new(fixtures::synthetic_cell(WIDE.0, WIDE.1));
    let receiver = Arc::new(fixtures::synthetic_cell(RECEIVER.0, RECEIVER.1));
    let mut session = engine.session();
    let launch = session
        .submit(
            Stage::builder(
                strong.clone(),
                DistributedRlcLoad::new(nets.line, ff(10.0)).unwrap(),
            )
            .label("launch")
            .input_slew(ps(100.0))
            .build()
            .unwrap(),
        )
        .unwrap();
    let fork = session
        .submit(
            Stage::builder(strong, RlcTreeLoad::new(nets.tree.clone()).unwrap())
                .label("fork")
                .input_from(launch)
                .build()
                .unwrap(),
        )
        .unwrap();
    let bus_stage = session
        .submit(
            Stage::builder(wide, CoupledBusLoad::new(nets.bus, nets.aggressor).unwrap())
                .label("bus")
                .input_from_sink(fork, "rx_far")
                .build()
                .unwrap(),
        )
        .unwrap();
    session
        .submit(
            Stage::builder(receiver, LumpedCapLoad::new(nets.capture_c).unwrap())
                .label("capture")
                .input_from_sink(bus_stage, "victim")
                .build()
                .unwrap(),
        )
        .unwrap();
    let local: Vec<_> = session
        .wait_all()
        .into_iter()
        .map(|(_, outcome)| outcome.expect("in-process stage succeeded"))
        .collect();

    // Remote run against two real worker processes.
    let fleet =
        ShardServer::spawn("127.0.0.1:0", 2, None, None, serviced_exe()).expect("spawn fleet");
    let (addr, _pool) = fleet.serve_in_background();
    let mut client = ServiceClient::connect(addr).expect("connect");
    let strong = RemoteCell::synthetic(STRONG.0, STRONG.1);
    let launch = client
        .submit(
            RemoteStage::builder(strong, RemoteLoad::line(&nets.line, ff(10.0)))
                .label("launch")
                .input_slew(ps(100.0))
                .build(),
        )
        .unwrap();
    let fork = client
        .submit(
            RemoteStage::builder(strong, RemoteLoad::from_tree(&nets.tree))
                .label("fork")
                .input_from(launch)
                .build(),
        )
        .unwrap();
    let bus_stage = client
        .submit(
            RemoteStage::builder(
                RemoteCell::synthetic(WIDE.0, WIDE.1),
                RemoteLoad::bus(&nets.bus, nets.aggressor),
            )
            .label("bus")
            .input_from_sink(fork, "rx_far")
            .build(),
        )
        .unwrap();
    client
        .submit(
            RemoteStage::builder(
                RemoteCell::synthetic(RECEIVER.0, RECEIVER.1),
                RemoteLoad::lumped(nets.capture_c),
            )
            .label("capture")
            .input_from_sink(bus_stage, "victim")
            .build(),
        )
        .unwrap();
    let remote: Vec<_> = client
        .wait_all()
        .expect("remote wait_all")
        .into_iter()
        .map(|outcome| outcome.expect("remote stage succeeded"))
        .collect();

    assert_eq!(local.len(), 4);
    assert_eq!(remote.len(), 4);
    for (l, r) in local.iter().zip(&remote) {
        assert_eq!(l.label, r.label);
        assert_eq!(l.backend, r.backend);
        // The wire format round-trips f64 bit patterns and the worker runs
        // the identical engine code, so the remote path is bit-identical —
        // far tighter than the 1e-9 the service contract promises.
        assert_eq!(
            l.delay.to_bits(),
            r.delay.to_bits(),
            "delay diverged on '{}': {} vs {}",
            l.label,
            l.delay,
            r.delay
        );
        assert_eq!(
            l.slew.to_bits(),
            r.slew.to_bits(),
            "slew diverged on '{}': {} vs {}",
            l.label,
            l.slew,
            r.slew
        );
        assert_eq!(
            l.input_t50.to_bits(),
            r.input_t50.to_bits(),
            "input t50 diverged on '{}': {} vs {}",
            l.label,
            l.input_t50,
            r.input_t50
        );
        assert_eq!(l.vdd.to_bits(), r.vdd.to_bits());
        assert_eq!(l.used_two_ramp, r.used_two_ramp);
    }
    client.close().unwrap();
}

#[test]
fn independent_stages_survive_a_shard_death() {
    let fleet =
        ShardServer::spawn("127.0.0.1:0", 2, None, None, serviced_exe()).expect("spawn fleet");
    let (addr, pool) = fleet.serve_in_background();
    let mut client = ServiceClient::connect(addr).expect("connect");
    let cell = RemoteCell::synthetic(75.0, 70.0);
    let nets = path_nets();

    let mut independents = Vec::new();
    for i in 0..6 {
        let handle = client
            .submit(
                RemoteStage::builder(cell, RemoteLoad::line(&nets.line, ff(10.0 + i as f64)))
                    .label(format!("independent-{i}"))
                    .input_slew(ps(100.0))
                    .build(),
            )
            .unwrap();
        independents.push(handle);
    }
    let producer = client
        .submit(
            RemoteStage::builder(cell, RemoteLoad::from_tree(&nets.tree))
                .label("producer")
                .input_slew(ps(100.0))
                .build(),
        )
        .unwrap();
    let dependent = client
        .submit(
            RemoteStage::builder(cell, RemoteLoad::lumped(ff(50.0)))
                .label("dependent")
                .input_from_sink(producer, "rx_far")
                .build(),
        )
        .unwrap();

    // Kill one worker while the batch is (likely) in flight. Independent
    // stages must still all succeed — the coordinator resubmits them to the
    // survivor. The dependent chain either finished on the surviving shard
    // or reports a typed shard-lost failure.
    pool.lock().unwrap().kill(0);
    let results = client.wait_all().expect("wait_all survives a dead shard");
    assert_eq!(results.len(), 8);
    for handle in independents {
        assert!(
            results[handle.index() as usize].is_ok(),
            "independent stage {} must be transparently resubmitted, got {:?}",
            handle.index(),
            results[handle.index() as usize]
        );
    }
    for handle in [producer, dependent] {
        match &results[handle.index() as usize] {
            Ok(_) => {}
            Err(e) => assert!(
                e.code() == Some(code::SHARD_LOST) || e.code() == Some(code::UPSTREAM_FAILED),
                "dependent chain failures must be typed, got {e}"
            ),
        }
    }
    client.close().unwrap();
}

#[test]
fn shared_result_cache_rescues_dependent_chains_from_a_dead_shard() {
    // In-process reference numbers for the 5-stage netlist below.
    let nets = path_nets();
    let engine = TimingEngine::new(EngineConfig::default());
    let cell = Arc::new(fixtures::synthetic_cell(STRONG.0, STRONG.1));
    let mut session = engine.session();
    for i in 0..2 {
        session
            .submit(
                Stage::builder(
                    cell.clone(),
                    DistributedRlcLoad::new(nets.line, ff(10.0 + i as f64)).unwrap(),
                )
                .label(format!("independent-{i}"))
                .input_slew(ps(100.0))
                .build()
                .unwrap(),
            )
            .unwrap();
    }
    let producer = session
        .submit(
            Stage::builder(cell.clone(), RlcTreeLoad::new(nets.tree.clone()).unwrap())
                .label("producer")
                .input_slew(ps(100.0))
                .build()
                .unwrap(),
        )
        .unwrap();
    let middle = session
        .submit(
            Stage::builder(
                cell.clone(),
                DistributedRlcLoad::new(nets.line, ff(20.0)).unwrap(),
            )
            .label("middle")
            .input_from_sink(producer, "rx_far")
            .build()
            .unwrap(),
        )
        .unwrap();
    session
        .submit(
            Stage::builder(cell, LumpedCapLoad::new(ff(50.0)).unwrap())
                .label("leaf")
                .input_from(middle)
                .build()
                .unwrap(),
        )
        .unwrap();
    let reference: Vec<_> = session
        .wait_all()
        .into_iter()
        .map(|(_, outcome)| outcome.expect("in-process stage succeeded"))
        .collect();

    let submit_all = |client: &mut ServiceClient| {
        let cell = RemoteCell::synthetic(STRONG.0, STRONG.1);
        for i in 0..2 {
            client
                .submit(
                    RemoteStage::builder(cell, RemoteLoad::line(&nets.line, ff(10.0 + i as f64)))
                        .label(format!("independent-{i}"))
                        .input_slew(ps(100.0))
                        .build(),
                )
                .unwrap();
        }
        let producer = client
            .submit(
                RemoteStage::builder(cell, RemoteLoad::from_tree(&nets.tree))
                    .label("producer")
                    .input_slew(ps(100.0))
                    .build(),
            )
            .unwrap();
        let middle = client
            .submit(
                RemoteStage::builder(cell, RemoteLoad::line(&nets.line, ff(20.0)))
                    .label("middle")
                    .input_from_sink(producer, "rx_far")
                    .build(),
            )
            .unwrap();
        client
            .submit(
                RemoteStage::builder(cell, RemoteLoad::lumped(ff(50.0)))
                    .label("leaf")
                    .input_from(middle)
                    .build(),
            )
            .unwrap();
    };

    // The producer chain hashes onto one fixed shard; killing shard 0 in
    // one fleet and shard 1 in another guarantees one of the two kills
    // lands on the chain while it is in flight. With the workers sharing a
    // stage-result store, the coordinator must replant the chain on the
    // survivor (replaying whatever the dead shard already persisted)
    // instead of failing it with SHARD_LOST — so *every* stage succeeds,
    // bit-identical to the in-process run, in both fleets.
    for kill_shard in [0usize, 1] {
        let dir = std::env::temp_dir().join(format!(
            "rlc-e2e-rescue-{kill_shard}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let fleet = ShardServer::spawn("127.0.0.1:0", 2, None, Some(&dir), serviced_exe())
            .expect("spawn fleet");
        let (addr, pool) = fleet.serve_in_background();
        let mut client = ServiceClient::connect(addr).expect("connect");
        submit_all(&mut client);
        pool.lock().unwrap().kill(kill_shard);
        let results = client.wait_all().expect("wait_all survives a dead shard");
        assert_eq!(results.len(), reference.len());
        for (expected, result) in reference.iter().zip(&results) {
            let report = result.as_ref().unwrap_or_else(|e| {
                panic!(
                    "stage '{}' must be rescued via the shared result store \
                     (killed shard {kill_shard}), got: {e}",
                    expected.label
                )
            });
            assert_eq!(expected.label, report.label);
            assert_eq!(
                expected.delay.to_bits(),
                report.delay.to_bits(),
                "'{}' delay diverged after rescue",
                expected.label
            );
            assert_eq!(
                expected.slew.to_bits(),
                report.slew.to_bits(),
                "'{}' slew diverged after rescue",
                expected.label
            );
        }
        client.close().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn typed_errors_cross_the_wire() {
    let addr = Server::bind("127.0.0.1:0", None, None)
        .expect("bind")
        .serve_in_background();

    // Unknown sink: the producer's line load only exposes "far".
    let mut client = ServiceClient::connect(addr).expect("connect");
    let cell = RemoteCell::synthetic(75.0, 70.0);
    let nets = path_nets();
    let producer = client
        .submit(
            RemoteStage::builder(cell, RemoteLoad::line(&nets.line, ff(10.0)))
                .label("producer")
                .input_slew(ps(100.0))
                .build(),
        )
        .unwrap();
    let err = client
        .submit(
            RemoteStage::builder(cell, RemoteLoad::lumped(ff(50.0)))
                .label("consumer")
                .input_from_sink(producer, "definitely-not-a-sink")
                .build(),
        )
        .unwrap_err();
    assert_eq!(err.code(), Some(code::UNKNOWN_SINK));
    // The rejected submission allocated no handle: the next submit reuses
    // its index, and the session still completes.
    let ok = client
        .submit(
            RemoteStage::builder(cell, RemoteLoad::lumped(ff(50.0)))
                .label("consumer")
                .input_from(producer)
                .build(),
        )
        .unwrap();
    assert_eq!(ok.index(), producer.index() + 1);
    assert!(client.wait_all().unwrap().iter().all(Result::is_ok));

    // Non-physical loads are typed rejections, not server panics.
    let err = client
        .submit(
            RemoteStage::builder(cell, RemoteLoad::lumped(-1.0))
                .label("negative-cap")
                .input_slew(ps(100.0))
                .build(),
        )
        .unwrap_err();
    assert_eq!(err.code(), Some(code::INVALID_STAGE));
    client.close().unwrap();

    // A zero timeout deadline-fails every stage with the typed code.
    let mut client =
        ServiceClient::connect_with(addr, &SessionOptions::timeout(Duration::ZERO)).unwrap();
    client
        .submit(
            RemoteStage::builder(cell, RemoteLoad::lumped(ff(50.0)))
                .label("too-late")
                .input_slew(ps(100.0))
                .build(),
        )
        .unwrap();
    let results = client.wait_all().unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(
        results[0].as_ref().unwrap_err().code(),
        Some(code::DEADLINE_EXCEEDED)
    );
    client.close().unwrap();
}

#[test]
fn dangling_dependency_handles_are_rejected_by_the_coordinator() {
    // The client API cannot forge handles, so drive the sharded server with
    // raw protocol frames: a submission naming a handle that was never
    // allocated must come back as a typed invalid-dependency error on both
    // the coordinator and the single-process server.
    let fleet =
        ShardServer::spawn("127.0.0.1:0", 2, None, None, serviced_exe()).expect("spawn fleet");
    let (shard_addr, _pool) = fleet.serve_in_background();
    let single_addr = Server::bind("127.0.0.1:0", None, None)
        .expect("bind")
        .serve_in_background();

    for addr in [shard_addr, single_addr] {
        let mut conn = BufReader::new(TcpStream::connect(addr).unwrap());
        let send = |request: &Request, conn: &mut BufReader<TcpStream>| {
            write_frame(conn.get_mut(), &request.encode()).unwrap();
            conn.get_mut().flush().unwrap();
            let payload = read_frame(conn).unwrap().expect("response");
            Response::decode(&payload).unwrap()
        };
        assert_eq!(
            send(
                &Request::Hello {
                    options: WireSessionOptions::defaults()
                },
                &mut conn
            ),
            Response::HelloAck
        );
        let stage = RemoteStage::builder(
            RemoteCell::synthetic(75.0, 70.0),
            RemoteLoad::lumped(50e-15),
        )
        .label("dangling")
        .input_slew(100e-12)
        .build();
        let mut wire = stage.into_wire();
        wire.after = vec![42];
        match send(&Request::Submit(Box::new(wire)), &mut conn) {
            Response::Error { code: got, .. } => assert_eq!(got, code::INVALID_DEPENDENCY),
            other => panic!("expected a typed rejection, got {other:?}"),
        }
    }
}

#[test]
fn lint_round_trip_is_bit_identical_to_the_in_process_audit() {
    let nets = path_nets();
    // A tree whose sink capacitance sits below the audit's physical floor:
    // every constructor accepts it (it is positive and finite), but the
    // static pass flags it as a degenerate element.
    let mut tree = RlcTree::new();
    let b = tree.add_branch(None, nets.line);
    tree.set_sink(b, "rx", 1e-22);

    // In-process reference on the very same engine configuration the server
    // binary runs.
    let engine = TimingEngine::new(EngineConfig::default());
    let stage = Stage::builder(
        fixtures::synthetic_cell(STRONG.0, STRONG.1),
        RlcTreeLoad::new(tree.clone()).unwrap(),
    )
    .label("audit")
    .input_slew(ps(100.0))
    .build()
    .unwrap();
    let local = rlc_service::server::wire_diagnostics(&engine.lint(&stage));
    assert!(
        local.iter().any(|d| d.code == "L023"),
        "the degenerate sink must be flagged: {local:?}"
    );

    let remote_stage = || {
        RemoteStage::builder(
            RemoteCell::synthetic(STRONG.0, STRONG.1),
            RemoteLoad::from_tree(&tree),
        )
        .label("audit")
        .input_slew(ps(100.0))
        .build()
    };

    // Single-process server.
    let addr = Server::bind("127.0.0.1:0", None, None)
        .expect("bind")
        .serve_in_background();
    let mut client = ServiceClient::connect(addr).expect("connect");
    let remote = client.lint(remote_stage()).expect("lint round trip");
    assert_eq!(remote, local, "remote audit diverged from in-process");
    // A clean stage lints clean across the wire, and auditing consumed no
    // stage index: the next submission still gets index 0.
    let clean = client
        .lint(
            RemoteStage::builder(
                RemoteCell::synthetic(STRONG.0, STRONG.1),
                RemoteLoad::line(&nets.line, ff(10.0)),
            )
            .label("clean")
            .input_slew(ps(100.0))
            .build(),
        )
        .expect("clean lint");
    assert!(clean.is_empty(), "clean stage flagged: {clean:?}");
    let handle = client
        .submit(
            RemoteStage::builder(
                RemoteCell::synthetic(STRONG.0, STRONG.1),
                RemoteLoad::lumped(ff(50.0)),
            )
            .label("first-real")
            .input_slew(ps(100.0))
            .build(),
        )
        .expect("submit after lint");
    assert_eq!(handle.index(), 0);
    assert!(client.wait_all().unwrap().iter().all(Result::is_ok));
    client.close().unwrap();

    // The shard coordinator forwards the audit to a worker process and the
    // answer is still bit-identical.
    let fleet =
        ShardServer::spawn("127.0.0.1:0", 2, None, None, serviced_exe()).expect("spawn fleet");
    let (addr, _pool) = fleet.serve_in_background();
    let mut client = ServiceClient::connect(addr).expect("connect shard");
    let remote = client.lint(remote_stage()).expect("sharded lint");
    assert_eq!(remote, local, "sharded audit diverged from in-process");
    client.close().unwrap();
}
