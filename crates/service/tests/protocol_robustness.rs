//! Frame-layer robustness: a hostile or buggy peer must produce typed
//! errors, never a wedged or crashed server. Recoverable corruption (bad
//! checksum, stale version, malformed payload) leaves the connection
//! usable; unrecoverable corruption (oversized declaration, mid-frame
//! truncation) closes only that connection, and the server keeps accepting.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use rlc_service::protocol::{Request, Response, WireSessionOptions};
use rlc_service::wire::{read_frame, write_frame, MAX_PAYLOAD};
use rlc_service::{code, Server};

fn start_server() -> SocketAddr {
    Server::bind("127.0.0.1:0", None, None)
        .expect("bind test server")
        .serve_in_background()
}

fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    BufReader::new(TcpStream::connect(addr).expect("connect to test server"))
}

/// A well-formed frame for the given request, as raw bytes.
fn frame(request: &Request) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &request.encode()).expect("encode frame");
    bytes
}

fn send_raw(conn: &mut BufReader<TcpStream>, bytes: &[u8]) {
    conn.get_mut().write_all(bytes).expect("send raw frame");
    conn.get_mut().flush().expect("flush");
}

fn expect_response(conn: &mut BufReader<TcpStream>) -> Response {
    let payload = read_frame(conn)
        .expect("read response frame")
        .expect("server closed unexpectedly");
    Response::decode(&payload).expect("decode response")
}

fn expect_error_code(conn: &mut BufReader<TcpStream>, want: u16) {
    match expect_response(conn) {
        Response::Error { code, .. } => assert_eq!(code, want),
        other => panic!("expected error code {want}, got {other:?}"),
    }
}

fn ping_pong(conn: &mut BufReader<TcpStream>) {
    send_raw(conn, &frame(&Request::Ping));
    assert_eq!(expect_response(conn), Response::Pong);
}

#[test]
fn bad_checksum_is_typed_and_the_connection_recovers() {
    let addr = start_server();
    let mut conn = connect(addr);
    let mut bytes = frame(&Request::Ping);
    *bytes.last_mut().unwrap() ^= 0xff;
    send_raw(&mut conn, &bytes);
    expect_error_code(&mut conn, code::CHECKSUM);
    // The corrupt frame was fully consumed: the stream is on a frame
    // boundary and keeps working.
    ping_pong(&mut conn);
}

#[test]
fn stale_protocol_version_is_typed_and_the_connection_recovers() {
    let addr = start_server();
    let mut conn = connect(addr);
    let mut bytes = frame(&Request::Ping);
    // The version field sits right after the 8-byte magic.
    bytes[8] = 99;
    send_raw(&mut conn, &bytes);
    expect_error_code(&mut conn, code::STALE_PROTOCOL);
    ping_pong(&mut conn);
}

#[test]
fn oversized_payloads_are_reported_then_the_connection_closes() {
    let addr = start_server();
    let mut conn = connect(addr);
    let mut bytes = frame(&Request::Ping);
    // The payload length sits after magic (8) + version (4).
    bytes[12..20].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    send_raw(&mut conn, &bytes);
    expect_error_code(&mut conn, code::OVERSIZED);
    // The stream position inside the declared frame is unknowable, so the
    // server hangs up rather than misparse what follows.
    assert_eq!(read_frame(&mut conn).expect("clean close"), None);
    // ... and the server itself is fine: a fresh connection works.
    ping_pong(&mut connect(addr));
}

#[test]
fn truncated_frames_close_cleanly_and_the_server_survives() {
    let addr = start_server();
    {
        let mut conn = connect(addr);
        let bytes = frame(&Request::Ping);
        // Send only half the frame, then hang up mid-frame.
        send_raw(&mut conn, &bytes[..bytes.len() / 2]);
    }
    // The half-fed connection is gone; the listener keeps serving.
    ping_pong(&mut connect(addr));
}

#[test]
fn malformed_requests_are_typed_and_the_connection_recovers() {
    let addr = start_server();
    let mut conn = connect(addr);
    // A frame whose payload is a garbage request (unknown tag 0xEE).
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &[0xEE, 1, 2, 3]).unwrap();
    send_raw(&mut conn, &bytes);
    expect_error_code(&mut conn, code::PROTOCOL);
    ping_pong(&mut conn);
}

#[test]
fn requests_before_hello_are_protocol_errors() {
    let addr = start_server();
    let mut conn = connect(addr);
    send_raw(&mut conn, &frame(&Request::NextReport));
    expect_error_code(&mut conn, code::PROTOCOL);
    // Hello still works afterwards — the error was per-request.
    send_raw(
        &mut conn,
        &frame(&Request::Hello {
            options: WireSessionOptions::defaults(),
        }),
    );
    assert_eq!(expect_response(&mut conn), Response::HelloAck);
    // A second Hello on the same connection is rejected.
    send_raw(
        &mut conn,
        &frame(&Request::Hello {
            options: WireSessionOptions::defaults(),
        }),
    );
    expect_error_code(&mut conn, code::PROTOCOL);
}
