//! Library characterization: sweep input transition × load capacitance,
//! simulate the inverter with `rlc-spice`, and record delay / output
//! transition into a [`TimingTable`].

use std::sync::atomic::{AtomicUsize, Ordering};

use rlc_numeric::units::{ff, pf, ps};
use rlc_spice::testbench::{inverter_with_cap_load, InverterSpec, OutputTransition};
use rlc_spice::transient::{TransientAnalysis, TransientOptions, TransientWorkspace};

use crate::table::TimingTable;
use crate::CharlibError;

/// Process-wide count of full-cell characterizations (grid sweeps) run.
static CELLS_CHARACTERIZED: AtomicUsize = AtomicUsize::new(0);

/// Process-wide count of single characterization points simulated.
static POINTS_CHARACTERIZED: AtomicUsize = AtomicUsize::new(0);

/// Number of full grid characterizations this process has run so far.
///
/// Monotonic and process-wide, complementing the per-instance
/// [`crate::Library::characterizations_run`] counter (which CI's cache
/// warm-start check asserts on): this one aggregates across every library
/// and direct [`characterize_inverter`] call in the process, for flows that
/// want a global "did anything simulate?" probe.
pub fn cells_characterized() -> usize {
    CELLS_CHARACTERIZED.load(Ordering::Relaxed)
}

/// Number of characterization-point transients this process has run so far
/// (tens per cell — the finer-grained companion of
/// [`cells_characterized`]).
pub fn points_characterized() -> usize {
    POINTS_CHARACTERIZED.load(Ordering::Relaxed)
}

/// Characterization grid and simulation controls.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationGrid {
    /// Input transition times (seconds), strictly increasing.
    pub slew_axis: Vec<f64>,
    /// Load capacitances (farads), strictly increasing.
    pub load_axis: Vec<f64>,
    /// Transient time step (seconds).
    pub time_step: f64,
    /// Which output transition to characterize. The paper's experiments drive
    /// rising output transitions; falling characterization is provided for
    /// completeness.
    pub transition: OutputTransition,
}

impl Default for CharacterizationGrid {
    /// The default grid covers the paper's sweep: input slews 50–200 ps and
    /// loads from a few fF to 2.5 pF (the largest total line capacitance in
    /// Table 1 is 1.8 pF).
    fn default() -> Self {
        CharacterizationGrid {
            slew_axis: vec![
                ps(25.0),
                ps(50.0),
                ps(75.0),
                ps(100.0),
                ps(150.0),
                ps(200.0),
                ps(300.0),
            ],
            load_axis: vec![
                ff(10.0),
                ff(50.0),
                ff(100.0),
                ff(200.0),
                ff(400.0),
                ff(800.0),
                pf(1.5),
                pf(2.5),
            ],
            time_step: ps(0.5),
            transition: OutputTransition::Rising,
        }
    }
}

impl CharacterizationGrid {
    /// A coarse grid for unit tests (3 × 4 points, larger time step) so the
    /// full characterization stays fast in debug builds.
    pub fn coarse_for_tests() -> Self {
        CharacterizationGrid {
            slew_axis: vec![ps(50.0), ps(100.0), ps(200.0)],
            load_axis: vec![ff(50.0), ff(200.0), ff(800.0), pf(2.0)],
            time_step: ps(1.0),
            transition: OutputTransition::Rising,
        }
    }

    /// Validates the grid.
    ///
    /// # Errors
    /// Returns [`CharlibError::InvalidGrid`] when an axis has fewer than two
    /// points, is not strictly increasing, or contains non-positive values,
    /// or when the time step is not positive.
    pub fn validate(&self) -> Result<(), CharlibError> {
        for (name, axis) in [("slew", &self.slew_axis), ("load", &self.load_axis)] {
            if axis.len() < 2 {
                return Err(CharlibError::InvalidGrid(format!(
                    "{name} axis needs at least two points"
                )));
            }
            if axis[0] <= 0.0 {
                return Err(CharlibError::InvalidGrid(format!(
                    "{name} axis must be positive"
                )));
            }
            for w in axis.windows(2) {
                if w[1] <= w[0] {
                    return Err(CharlibError::InvalidGrid(format!(
                        "{name} axis must be strictly increasing"
                    )));
                }
            }
        }
        if self.time_step <= 0.0 {
            return Err(CharlibError::InvalidGrid(
                "time step must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// One characterized point: the measured delay and output transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CharacterizedPoint {
    /// 50 % input to 50 % output delay (seconds).
    pub delay: f64,
    /// 10–90 % output transition time (seconds).
    pub transition: f64,
}

/// Simulates one characterization point: the inverter driving `load` farads
/// with an input ramp of `input_slew` seconds.
///
/// # Errors
/// Propagates simulation failures and reports missing waveform crossings.
pub fn characterize_point(
    spec: &InverterSpec,
    input_slew: f64,
    load: f64,
    time_step: f64,
    transition: OutputTransition,
) -> Result<CharacterizedPoint, CharlibError> {
    let mut workspace = TransientWorkspace::new();
    characterize_point_with(
        spec,
        input_slew,
        load,
        time_step,
        transition,
        &mut workspace,
    )
}

/// [`characterize_point`] reusing a caller-owned simulation workspace, so a
/// grid of points shares one set of kernel buffers instead of reallocating
/// them per simulation.
///
/// # Errors
/// Propagates simulation failures and reports missing waveform crossings.
pub fn characterize_point_with(
    spec: &InverterSpec,
    input_slew: f64,
    load: f64,
    time_step: f64,
    transition: OutputTransition,
    workspace: &mut TransientWorkspace,
) -> Result<CharacterizedPoint, CharlibError> {
    POINTS_CHARACTERIZED.fetch_add(1, Ordering::Relaxed);
    let input_delay = ps(20.0);
    let (ckt, nodes) = inverter_with_cap_load(spec, input_slew, input_delay, load, transition);

    // Simulation window: the input ramp plus a generous multiple of the
    // output time constant (driver resistance falls with size; 3 kΩ·µm /
    // width is a conservative upper bound for the calibrated devices).
    let r_estimate = 3.0e-3 / spec.nmos_width; // ohms
    let window = input_delay + input_slew + 8.0 * r_estimate * load + ps(200.0);
    let steps = (window / time_step).ceil().max(50.0);
    let opts = TransientOptions::try_new(time_step, steps * time_step)?;
    let result = TransientAnalysis::new(opts).run_with(&ckt, workspace)?;

    let vdd = spec.vdd;
    let out = result.waveform(nodes.output);
    let input = result.waveform(nodes.input);
    let rising = matches!(transition, OutputTransition::Rising);

    let t50_in =
        input
            .crossing_fraction(0.5, vdd, !rising)
            .ok_or_else(|| CharlibError::Measurement {
                what: "input 50% crossing".into(),
                input_slew,
                load,
            })?;
    let t50_out =
        out.crossing_fraction(0.5, vdd, rising)
            .ok_or_else(|| CharlibError::Measurement {
                what: "output 50% crossing".into(),
                input_slew,
                load,
            })?;
    let slew_out = out
        .slew_10_90(vdd, rising)
        .ok_or_else(|| CharlibError::Measurement {
            what: "output 10-90% transition".into(),
            input_slew,
            load,
        })?;

    Ok(CharacterizedPoint {
        delay: t50_out - t50_in,
        transition: slew_out,
    })
}

/// Characterizes an inverter over a full grid.
///
/// # Errors
/// Fails if the grid is invalid or any point fails to simulate or measure.
pub fn characterize_inverter(
    spec: &InverterSpec,
    grid: &CharacterizationGrid,
) -> Result<TimingTable, CharlibError> {
    let mut workspace = TransientWorkspace::new();
    characterize_inverter_with(spec, grid, &mut workspace)
}

/// [`characterize_inverter`] reusing a caller-owned simulation workspace:
/// every grid point (tens of transient runs per cell) shares one set of
/// kernel buffers.
///
/// # Errors
/// Fails if the grid is invalid or any point fails to simulate or measure.
pub fn characterize_inverter_with(
    spec: &InverterSpec,
    grid: &CharacterizationGrid,
    workspace: &mut TransientWorkspace,
) -> Result<TimingTable, CharlibError> {
    grid.validate()?;
    CELLS_CHARACTERIZED.fetch_add(1, Ordering::Relaxed);
    let mut delay = Vec::with_capacity(grid.slew_axis.len());
    let mut transition = Vec::with_capacity(grid.slew_axis.len());
    for &slew in &grid.slew_axis {
        let mut drow = Vec::with_capacity(grid.load_axis.len());
        let mut trow = Vec::with_capacity(grid.load_axis.len());
        for &load in &grid.load_axis {
            let point = characterize_point_with(
                spec,
                slew,
                load,
                grid.time_step,
                grid.transition,
                workspace,
            )?;
            drow.push(point.delay);
            trow.push(point.transition);
        }
        delay.push(drow);
        transition.push(trow);
    }
    Ok(TimingTable::new(
        grid.slew_axis.clone(),
        grid.load_axis.clone(),
        delay,
        transition,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_validation_catches_mistakes() {
        let mut g = CharacterizationGrid::coarse_for_tests();
        assert!(g.validate().is_ok());
        g.slew_axis = vec![ps(50.0)];
        assert!(matches!(g.validate(), Err(CharlibError::InvalidGrid(_))));
        let mut g = CharacterizationGrid::coarse_for_tests();
        g.load_axis[0] = -ff(1.0);
        assert!(g.validate().is_err());
        let mut g = CharacterizationGrid::coarse_for_tests();
        g.time_step = 0.0;
        assert!(g.validate().is_err());
        let mut g = CharacterizationGrid::coarse_for_tests();
        g.load_axis = vec![ff(100.0), ff(50.0)];
        assert!(g.validate().is_err());
    }

    #[test]
    fn process_wide_counters_track_characterization_work() {
        let (cells_before, points_before) = (cells_characterized(), points_characterized());
        let spec = InverterSpec::sized_018(50.0);
        characterize_point(
            &spec,
            ps(100.0),
            ff(200.0),
            ps(1.0),
            OutputTransition::Rising,
        )
        .unwrap();
        // Other tests may characterize concurrently, so assert monotonic
        // growth by at least this test's own work, not exact counts.
        assert!(points_characterized() > points_before);
        let grid = CharacterizationGrid::coarse_for_tests();
        characterize_inverter(&spec, &grid).unwrap();
        assert!(cells_characterized() > cells_before);
        assert!(
            points_characterized()
                >= points_before + 1 + grid.slew_axis.len() * grid.load_axis.len()
        );
    }

    #[test]
    fn single_point_measures_sane_values() {
        let spec = InverterSpec::sized_018(75.0);
        let p = characterize_point(
            &spec,
            ps(100.0),
            ff(500.0),
            ps(1.0),
            OutputTransition::Rising,
        )
        .unwrap();
        // A 75X inverter driving 500 fF: delay of tens of ps, transition
        // below a nanosecond.
        assert!(
            p.delay > ps(5.0) && p.delay < ps(200.0),
            "delay {:.1e}",
            p.delay
        );
        assert!(
            p.transition > ps(10.0) && p.transition < ps(600.0),
            "transition {:.1e}",
            p.transition
        );
    }

    #[test]
    fn delay_and_transition_grow_with_load() {
        let spec = InverterSpec::sized_018(50.0);
        let small = characterize_point(
            &spec,
            ps(100.0),
            ff(100.0),
            ps(1.0),
            OutputTransition::Rising,
        )
        .unwrap();
        let large = characterize_point(
            &spec,
            ps(100.0),
            ff(1000.0),
            ps(1.0),
            OutputTransition::Rising,
        )
        .unwrap();
        assert!(large.delay > small.delay);
        assert!(large.transition > 2.0 * small.transition);
    }

    #[test]
    fn bigger_drivers_are_faster() {
        let small_drv = InverterSpec::sized_018(25.0);
        let big_drv = InverterSpec::sized_018(125.0);
        let load = ff(800.0);
        let slow = characterize_point(
            &small_drv,
            ps(100.0),
            load,
            ps(1.0),
            OutputTransition::Rising,
        )
        .unwrap();
        let fast = characterize_point(&big_drv, ps(100.0), load, ps(1.0), OutputTransition::Rising)
            .unwrap();
        assert!(fast.delay < slow.delay);
        assert!(fast.transition < slow.transition);
    }

    #[test]
    fn full_coarse_grid_characterization_is_monotone_in_load() {
        let spec = InverterSpec::sized_018(75.0);
        let table =
            characterize_inverter(&spec, &CharacterizationGrid::coarse_for_tests()).unwrap();
        let slew = ps(100.0);
        let mut prev = 0.0;
        for &load in table.load_axis() {
            let t = table.transition(slew, load);
            assert!(t > prev, "transition must grow with load");
            prev = t;
        }
    }
}
