//! # rlc-charlib
//!
//! NLDM-style cell characterization built on the `rlc-spice` engine.
//!
//! The paper's flow is "compatible with existing pre-characterized cell
//! tables that store only 50 % delay and output transition time for each
//! input slew and output capacitive load". This crate produces exactly those
//! tables for the calibrated 0.18 µm inverters (25X … 125X), provides the
//! bilinear interpolation used during the effective-capacitance iterations,
//! and extracts the driver on-resistance needed for the paper's voltage
//! breakpoint `f = Z0 / (Z0 + Rs)` (fitting an exponential between the 50 %
//! and 90 % points of the output waveform, as in Thevenin-model
//! characterization).
//!
//! ```no_run
//! use rlc_charlib::prelude::*;
//!
//! // Characterize a 75X inverter over the default grid (runs ~50 transient
//! // simulations; use the cached `Library` in real flows).
//! let cell = DriverCell::characterize(75.0, &CharacterizationGrid::default())?;
//! let (delay, transition) = cell.lookup(100e-12, 500e-15);
//! assert!(delay > 0.0 && transition > 0.0);
//! # Ok::<(), rlc_charlib::CharlibError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod cell;
pub mod characterize;
pub mod library;
pub mod resistance;
pub mod table;

pub use cache::CharCache;
pub use cell::DriverCell;
pub use characterize::CharacterizationGrid;
pub use library::Library;
pub use resistance::driver_on_resistance;
pub use table::TimingTable;

/// Convenient glob import.
pub mod prelude {
    pub use crate::cache::CharCache;
    pub use crate::cell::DriverCell;
    pub use crate::characterize::CharacterizationGrid;
    pub use crate::library::Library;
    pub use crate::resistance::driver_on_resistance;
    pub use crate::table::TimingTable;
    pub use crate::CharlibError;
}

/// Errors produced during characterization.
#[derive(Debug, Clone, PartialEq)]
pub enum CharlibError {
    /// The underlying transient simulation failed.
    Simulation(String),
    /// A waveform measurement failed (the output never crossed the required
    /// level within the simulated window).
    Measurement {
        /// Description of the failed measurement.
        what: String,
        /// Input slew of the failing characterization point (seconds).
        input_slew: f64,
        /// Load capacitance of the failing characterization point (farads).
        load: f64,
    },
    /// The characterization grid is malformed.
    InvalidGrid(String),
    /// The persistent characterization cache could not be opened or written.
    /// Read problems never produce this error — an unreadable or corrupt
    /// entry silently falls back to re-characterization.
    Cache(String),
}

impl std::fmt::Display for CharlibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CharlibError::Simulation(msg) => write!(f, "simulation failed: {msg}"),
            CharlibError::Measurement {
                what,
                input_slew,
                load,
            } => write!(
                f,
                "measurement '{what}' failed at slew {:.1} ps, load {:.1} fF",
                input_slew * 1e12,
                load * 1e15
            ),
            CharlibError::InvalidGrid(msg) => write!(f, "invalid characterization grid: {msg}"),
            CharlibError::Cache(msg) => write!(f, "characterization cache error: {msg}"),
        }
    }
}

impl std::error::Error for CharlibError {}

impl From<rlc_spice::SpiceError> for CharlibError {
    fn from(e: rlc_spice::SpiceError) -> Self {
        CharlibError::Simulation(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversion() {
        let e = CharlibError::Measurement {
            what: "t90".into(),
            input_slew: 100e-12,
            load: 500e-15,
        };
        assert!(e.to_string().contains("t90"));
        assert!(e.to_string().contains("100.0 ps"));
        let from: CharlibError = rlc_spice::SpiceError::InvalidCircuit("x".into()).into();
        assert!(matches!(from, CharlibError::Simulation(_)));
        assert!(CharlibError::InvalidGrid("empty".into())
            .to_string()
            .contains("empty"));
        assert!(CharlibError::Cache("disk full".into())
            .to_string()
            .contains("disk full"));
    }
}
