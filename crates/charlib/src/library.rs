//! A lazily characterized cell library with in-memory and on-disk caching.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use rlc_spice::testbench::InverterSpec;

use crate::cache::CharCache;
use crate::cell::DriverCell;
use crate::characterize::CharacterizationGrid;
use crate::CharlibError;

/// A cache of characterized driver cells keyed by drive strength.
///
/// The paper sweeps driver strengths 25X–125X; characterizing each one costs
/// tens of transient simulations, so the library characterizes lazily and
/// caches the result for the rest of the run. Cells are stored behind `Arc`
/// so batch analyses hand out shared handles ([`Library::cell_shared`])
/// instead of cloning whole timing tables per stage.
///
/// A library opened with [`Library::open_cached`] additionally consults a
/// persistent on-disk store ([`CharCache`]) before running any transient
/// characterization, and persists every miss — so the expensive cold start is
/// paid once per (cell, grid) across *all* processes sharing the cache
/// directory, not once per process.
#[derive(Debug, Clone)]
pub struct Library {
    grid: CharacterizationGrid,
    cells: BTreeMap<u64, Arc<DriverCell>>,
    cache: Option<CharCache>,
    characterizations: usize,
    disk_hits: usize,
}

impl Library {
    /// Creates an empty in-memory library that characterizes on the given
    /// grid.
    pub fn new(grid: CharacterizationGrid) -> Self {
        Library {
            grid,
            cells: BTreeMap::new(),
            cache: None,
            characterizations: 0,
            disk_hits: 0,
        }
    }

    /// Creates a library on the default (full-resolution) grid.
    pub fn with_default_grid() -> Self {
        Self::new(CharacterizationGrid::default())
    }

    /// Opens a library backed by a persistent characterization cache at
    /// `dir` (created if missing), on the default grid.
    ///
    /// # Errors
    /// Returns [`CharlibError::Cache`] when the directory cannot be created.
    pub fn open_cached(dir: impl AsRef<Path>) -> Result<Self, CharlibError> {
        Self::open_cached_with_grid(dir, CharacterizationGrid::default())
    }

    /// Opens a cache-backed library that characterizes on a specific grid.
    /// Entries are keyed by cell *and* grid, so libraries on different grids
    /// can safely share one cache directory.
    ///
    /// # Errors
    /// Returns [`CharlibError::Cache`] when the directory cannot be created.
    pub fn open_cached_with_grid(
        dir: impl AsRef<Path>,
        grid: CharacterizationGrid,
    ) -> Result<Self, CharlibError> {
        let mut lib = Self::new(grid);
        lib.cache = Some(CharCache::open(dir)?);
        Ok(lib)
    }

    /// The persistent store backing this library, if one was opened.
    pub fn cache(&self) -> Option<&CharCache> {
        self.cache.as_ref()
    }

    /// Number of transient characterizations this library actually ran —
    /// i.e. queries served by neither the in-memory map nor the disk cache.
    /// A warm-started library answering only cached cells reports zero.
    pub fn characterizations_run(&self) -> usize {
        self.characterizations
    }

    /// Number of cells served from the persistent store instead of being
    /// re-characterized.
    pub fn disk_cache_hits(&self) -> usize {
        self.disk_hits
    }

    /// The characterization grid used for new cells.
    pub fn grid(&self) -> &CharacterizationGrid {
        &self.grid
    }

    /// Number of cells characterized so far.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether any cell has been characterized yet.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Drive strengths characterized so far.
    pub fn characterized_sizes(&self) -> Vec<f64> {
        self.cells.keys().map(|&k| k as f64 / 1000.0).collect()
    }

    fn key(size: f64) -> u64 {
        (size * 1000.0).round() as u64
    }

    /// Returns the characterized cell for `size`, characterizing it on first
    /// use.
    ///
    /// # Errors
    /// Propagates characterization failures.
    ///
    /// # Panics
    /// Panics if `size` is not positive.
    pub fn cell(&mut self, size: f64) -> Result<&DriverCell, CharlibError> {
        Ok(self.cell_entry(size)?.as_ref())
    }

    /// Returns a shared handle to the characterized cell for `size`,
    /// characterizing it on first use. Batch stages should prefer this over
    /// [`Library::cell`] + clone: every stage then references the one cached
    /// cell instead of copying its timing tables.
    ///
    /// # Errors
    /// Propagates characterization failures.
    ///
    /// # Panics
    /// Panics if `size` is not positive.
    pub fn cell_shared(&mut self, size: f64) -> Result<Arc<DriverCell>, CharlibError> {
        Ok(Arc::clone(self.cell_entry(size)?))
    }

    /// Returns the cell for `size`, resolving it in cost order: the in-memory
    /// map, then the persistent store (for cache-backed libraries), and only
    /// then by running the transient characterization — whose result is
    /// persisted so every later process warm-starts.
    ///
    /// This is the same resolution path [`Library::cell`] and
    /// [`Library::cell_shared`] use; it exists as a named entry point for
    /// flows that want to make the cache interaction explicit.
    ///
    /// # Errors
    /// Propagates characterization failures. Cache *read* problems (missing,
    /// truncated or stale entries) are never errors — they fall back to
    /// re-characterization; cache write failures are ignored (the cache is an
    /// optimization, not a correctness requirement).
    ///
    /// # Panics
    /// Panics if `size` is not positive.
    pub fn get_or_characterize(&mut self, size: f64) -> Result<Arc<DriverCell>, CharlibError> {
        self.cell_shared(size)
    }

    fn cell_entry(&mut self, size: f64) -> Result<&Arc<DriverCell>, CharlibError> {
        assert!(size > 0.0, "driver size must be positive");
        let key = Self::key(size);
        if !self.cells.contains_key(&key) {
            let spec = InverterSpec::sized_018(size);
            let cached = self.cache.as_ref().and_then(|c| c.load(&spec, &self.grid));
            let cell = match cached {
                Some(cell) => {
                    self.disk_hits += 1;
                    cell
                }
                None => {
                    let cell = DriverCell::characterize_spec(spec, &self.grid)?;
                    self.characterizations += 1;
                    if let Some(cache) = &self.cache {
                        // Best-effort persistence: a full disk must not fail
                        // the analysis that needed the cell.
                        let _ = cache.store(&cell, &self.grid);
                    }
                    cell
                }
            };
            self.cells.insert(key, Arc::new(cell));
        }
        Ok(self.cells.get(&key).expect("cell was just inserted"))
    }

    /// Inserts a pre-built cell (used by tests and for loading persisted
    /// libraries).
    pub fn insert(&mut self, cell: DriverCell) {
        self.insert_shared(Arc::new(cell));
    }

    /// Inserts an already shared cell handle without cloning its tables.
    pub fn insert_shared(&mut self, cell: Arc<DriverCell>) {
        self.cells.insert(Self::key(cell.size()), cell);
    }

    /// Looks up an already characterized cell without triggering
    /// characterization.
    pub fn get(&self, size: f64) -> Option<&DriverCell> {
        self.cells.get(&Self::key(size)).map(Arc::as_ref)
    }

    /// Looks up a shared handle to an already characterized cell without
    /// triggering characterization.
    pub fn get_shared(&self, size: f64) -> Option<Arc<DriverCell>> {
        self.cells.get(&Self::key(size)).map(Arc::clone)
    }
}

impl Default for Library {
    fn default() -> Self {
        Self::with_default_grid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TimingTable;
    use rlc_numeric::units::{ff, pf, ps};
    use rlc_spice::testbench::InverterSpec;

    fn dummy_cell(size: f64) -> DriverCell {
        let slews = vec![ps(50.0), ps(100.0)];
        let loads = vec![ff(100.0), pf(1.0)];
        let grid = vec![vec![ps(10.0), ps(50.0)], vec![ps(12.0), ps(55.0)]];
        DriverCell::from_parts(
            InverterSpec::sized_018(size),
            TimingTable::new(slews, loads, grid.clone(), grid),
            100.0 / size * 25.0,
        )
    }

    #[test]
    fn insert_and_get_round_trip() {
        let mut lib = Library::new(CharacterizationGrid::coarse_for_tests());
        assert!(lib.is_empty());
        lib.insert(dummy_cell(75.0));
        lib.insert(dummy_cell(25.0));
        assert_eq!(lib.len(), 2);
        assert!(lib.get(75.0).is_some());
        assert!(lib.get(100.0).is_none());
        assert_eq!(lib.characterized_sizes(), vec![25.0, 75.0]);
        assert_eq!(lib.grid(), &CharacterizationGrid::coarse_for_tests());
    }

    #[test]
    fn cell_is_characterized_once_and_cached() {
        let mut lib = Library::new(CharacterizationGrid::coarse_for_tests());
        // Pre-insert so `cell` does not need to run simulations; the call must
        // return the cached copy rather than re-characterizing.
        lib.insert(dummy_cell(50.0));
        let before = lib.len();
        let cell = lib.cell(50.0).unwrap();
        assert_eq!(cell.size(), 50.0);
        assert_eq!(lib.len(), before);
    }

    #[test]
    fn cell_shared_hands_out_the_same_allocation() {
        let mut lib = Library::new(CharacterizationGrid::coarse_for_tests());
        lib.insert(dummy_cell(60.0));
        let a = lib.cell_shared(60.0).unwrap();
        let b = lib.cell_shared(60.0).unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b), "no per-caller cell clones");
        let c = lib.get_shared(60.0).unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &c));
        assert!(lib.get_shared(61.0).is_none());
        // insert_shared keeps the caller's allocation.
        let pre = std::sync::Arc::new(dummy_cell(70.0));
        lib.insert_shared(pre.clone());
        assert!(std::sync::Arc::ptr_eq(&pre, &lib.get_shared(70.0).unwrap()));
    }

    #[test]
    fn lazy_characterization_happens_on_demand() {
        let mut lib = Library::new(CharacterizationGrid::coarse_for_tests());
        assert!(lib.get(75.0).is_none());
        let cell = lib.cell(75.0).unwrap();
        assert!(cell.on_resistance() > 10.0);
        assert_eq!(lib.len(), 1);
        // Second call hits the cache (same pointer-equal table contents).
        let again = lib.cell(75.0).unwrap().clone();
        assert_eq!(&again, lib.get(75.0).unwrap());
    }

    #[test]
    #[should_panic(expected = "size must be positive")]
    fn negative_size_rejected() {
        let mut lib = Library::default();
        let _ = lib.cell(-5.0);
    }
}
