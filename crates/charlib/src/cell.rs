//! A characterized driver cell: the inverter description plus its timing
//! table and cached on-resistance.

use rlc_numeric::units::ps;
use rlc_spice::testbench::{InverterSpec, OutputTransition};
use rlc_spice::transient::TransientWorkspace;

use crate::characterize::{characterize_inverter_with, CharacterizationGrid};
use crate::resistance::{driver_on_resistance, driver_on_resistance_with};
use crate::table::TimingTable;
use crate::CharlibError;

/// Fraction of the full swing covered by a 10–90 % transition measurement;
/// dividing by it converts a measured transition time into the 0–100 % ramp
/// duration used by the paper's saturated-ramp waveforms.
pub const TRANSITION_TO_RAMP: f64 = 0.8;

/// A characterized inverter driver.
#[derive(Debug, Clone, PartialEq)]
pub struct DriverCell {
    spec: InverterSpec,
    table: TimingTable,
    on_resistance: f64,
    resistance_load: f64,
}

impl DriverCell {
    /// Characterizes the paper's `sizeX` inverter over `grid` and extracts
    /// its on-resistance (using the largest characterized load, mirroring the
    /// paper's use of the total capacitance).
    ///
    /// # Errors
    /// Propagates characterization failures.
    pub fn characterize(size: f64, grid: &CharacterizationGrid) -> Result<Self, CharlibError> {
        let spec = InverterSpec::sized_018(size);
        Self::characterize_spec(spec, grid)
    }

    /// Characterizes an arbitrary inverter specification.
    ///
    /// # Errors
    /// Propagates characterization failures.
    pub fn characterize_spec(
        spec: InverterSpec,
        grid: &CharacterizationGrid,
    ) -> Result<Self, CharlibError> {
        // One workspace serves every transient run of the characterization:
        // the grid sweep plus the resistance extraction.
        let mut workspace = TransientWorkspace::new();
        let table = characterize_inverter_with(&spec, grid, &mut workspace)?;
        let resistance_load = table.max_load();
        let on_resistance = driver_on_resistance_with(
            &spec,
            ps(100.0),
            resistance_load,
            grid.transition,
            &mut workspace,
        )?
        .resistance;
        Ok(DriverCell {
            spec,
            table,
            on_resistance,
            resistance_load,
        })
    }

    /// Builds a cell from an existing table and resistance (used in tests and
    /// when loading pre-computed libraries).
    pub fn from_parts(spec: InverterSpec, table: TimingTable, on_resistance: f64) -> Self {
        let resistance_load = table.max_load();
        DriverCell {
            spec,
            table,
            on_resistance,
            resistance_load,
        }
    }

    /// The inverter description.
    pub fn spec(&self) -> &InverterSpec {
        &self.spec
    }

    /// The underlying timing table.
    pub fn table(&self) -> &TimingTable {
        &self.table
    }

    /// Drive strength multiple (e.g. 75.0 for a "75X" driver).
    pub fn size(&self) -> f64 {
        self.spec.size()
    }

    /// Supply voltage (volts).
    pub fn vdd(&self) -> f64 {
        self.spec.vdd
    }

    /// Extracted on-resistance `Rs` (ohms).
    pub fn on_resistance(&self) -> f64 {
        self.on_resistance
    }

    /// Load capacitance used when the on-resistance was extracted (farads).
    pub fn resistance_extraction_load(&self) -> f64 {
        self.resistance_load
    }

    /// Re-extracts the on-resistance against a specific load capacitance
    /// (for example the total capacitance of the line being analyzed, which
    /// is the paper's prescription).
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn on_resistance_for_load(&self, load: f64) -> Result<f64, CharlibError> {
        Ok(driver_on_resistance(&self.spec, ps(100.0), load, OutputTransition::Rising)?.resistance)
    }

    /// 50 % delay from the table (seconds).
    pub fn delay(&self, input_slew: f64, load: f64) -> f64 {
        self.table.delay(input_slew, load)
    }

    /// 10–90 % output transition from the table (seconds).
    pub fn output_transition(&self, input_slew: f64, load: f64) -> f64 {
        self.table.transition(input_slew, load)
    }

    /// Delay and transition together.
    pub fn lookup(&self, input_slew: f64, load: f64) -> (f64, f64) {
        self.table.lookup(input_slew, load)
    }

    /// Full-swing (0–100 %) ramp time for the given operating point, obtained
    /// by scaling the 10–90 % output transition. This is the `Tr` fed into the
    /// paper's effective-capacitance equations.
    pub fn ramp_time(&self, input_slew: f64, load: f64) -> f64 {
        self.output_transition(input_slew, load) / TRANSITION_TO_RAMP
    }

    /// Input capacitance of this driver (used as the fan-out load `CL` when a
    /// line drives an identical receiver).
    pub fn input_capacitance(&self) -> f64 {
        self.spec.input_capacitance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_numeric::units::{ff, pf};

    fn synthetic_cell() -> DriverCell {
        // Affine synthetic table so the numbers are easy to verify.
        let slews = vec![ps(50.0), ps(100.0), ps(200.0)];
        let loads = vec![ff(100.0), ff(500.0), pf(1.0), pf(2.0)];
        let delay: Vec<Vec<f64>> = slews
            .iter()
            .map(|&s| {
                loads
                    .iter()
                    .map(|&c| 0.1 * s + 60e-12 * (c / 1e-12))
                    .collect()
            })
            .collect();
        let transition: Vec<Vec<f64>> = slews
            .iter()
            .map(|_| {
                loads
                    .iter()
                    .map(|&c| ps(16.0) + 160e-12 * (c / 1e-12))
                    .collect()
            })
            .collect();
        DriverCell::from_parts(
            InverterSpec::sized_018(75.0),
            TimingTable::new(slews, loads, delay, transition),
            70.0,
        )
    }

    #[test]
    fn accessors_and_lookup() {
        let cell = synthetic_cell();
        assert_eq!(cell.size(), 75.0);
        assert_eq!(cell.vdd(), 1.8);
        assert_eq!(cell.on_resistance(), 70.0);
        assert_eq!(cell.resistance_extraction_load(), pf(2.0));
        let (d, t) = cell.lookup(ps(100.0), ff(500.0));
        assert!((d - (10e-12 + 30e-12)).abs() < 1e-15);
        assert!((t - (16e-12 + 80e-12)).abs() < 1e-15);
        assert!(cell.input_capacitance() > 0.0);
    }

    #[test]
    fn ramp_time_rescales_the_transition() {
        let cell = synthetic_cell();
        let tr = cell.ramp_time(ps(100.0), ff(500.0));
        let transition = cell.output_transition(ps(100.0), ff(500.0));
        assert!((tr - transition / 0.8).abs() < 1e-15);
        assert!(tr > transition);
    }

    #[test]
    fn real_characterization_of_a_small_cell() {
        let grid = CharacterizationGrid::coarse_for_tests();
        let cell = DriverCell::characterize(75.0, &grid).unwrap();
        // Ramp time must grow with load and the resistance must be physical.
        let fast = cell.ramp_time(ps(100.0), ff(100.0));
        let slow = cell.ramp_time(ps(100.0), pf(1.5));
        assert!(slow > 2.0 * fast);
        assert!(cell.on_resistance() > 20.0 && cell.on_resistance() < 150.0);
        // Changing the extraction load must not change Rs dramatically.
        let r2 = cell.on_resistance_for_load(pf(1.0)).unwrap();
        assert!((r2 - cell.on_resistance()).abs() / cell.on_resistance() < 0.4);
    }
}
