//! Driver on-resistance extraction.
//!
//! The paper models the breakpoint voltage with the transmission-line divider
//! `f = Z0 / (Z0 + Rs)` and obtains `Rs` "by a similar approach as adopted by
//! Thevenin models: we observe the delay between 50 % and 90 % points of the
//! output waveform and fit an exponential between these points". For a
//! first-order exponential charged through `Rs` into a capacitance `C`, the
//! 50 %→90 % delay is `Rs · C · ln 5`, so `Rs = Δt / (C ln 5)`.
//!
//! The paper also notes that using the *total* capacitance instead of the
//! effective capacitance changes neither the resistance nor the breakpoint
//! appreciably, so the extraction is a single simulation rather than an
//! iteration. The regression tests in this module check exactly that
//! insensitivity.

use rlc_numeric::units::ps;
use rlc_spice::testbench::{inverter_with_cap_load, InverterSpec, OutputTransition};
use rlc_spice::transient::{TransientAnalysis, TransientOptions, TransientWorkspace};

use crate::CharlibError;

/// Extracted driver switch-resistance information.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverResistance {
    /// Fitted on-resistance (ohms).
    pub resistance: f64,
    /// Load capacitance used for the fit (farads).
    pub load: f64,
    /// Measured 50 %→90 % delay (seconds).
    pub t50_to_t90: f64,
}

/// Extracts the driver on-resistance by simulating the inverter against a
/// lumped `load` capacitance and fitting an exponential between the 50 % and
/// 90 % output crossings.
///
/// # Errors
/// Propagates simulation errors; fails with a measurement error if the output
/// never reaches 90 % of the supply in the simulated window.
pub fn driver_on_resistance(
    spec: &InverterSpec,
    input_slew: f64,
    load: f64,
    transition: OutputTransition,
) -> Result<DriverResistance, CharlibError> {
    let mut workspace = TransientWorkspace::new();
    driver_on_resistance_with(spec, input_slew, load, transition, &mut workspace)
}

/// [`driver_on_resistance`] reusing a caller-owned simulation workspace.
///
/// # Errors
/// Propagates simulation errors; fails with a measurement error if the output
/// never reaches 90 % of the supply in the simulated window.
pub fn driver_on_resistance_with(
    spec: &InverterSpec,
    input_slew: f64,
    load: f64,
    transition: OutputTransition,
    workspace: &mut TransientWorkspace,
) -> Result<DriverResistance, CharlibError> {
    assert!(load > 0.0, "load capacitance must be positive");
    let input_delay = ps(20.0);
    let (ckt, nodes) = inverter_with_cap_load(spec, input_slew, input_delay, load, transition);

    let r_estimate = 3.0e-3 / spec.nmos_width;
    let window = input_delay + input_slew + 10.0 * r_estimate * load + ps(200.0);
    let time_step = ps(0.5);
    let steps = (window / time_step).ceil().max(50.0);
    let result = TransientAnalysis::new(TransientOptions::try_new(time_step, steps * time_step)?)
        .run_with(&ckt, workspace)?;

    let vdd = spec.vdd;
    let rising = matches!(transition, OutputTransition::Rising);
    let out = result.waveform(nodes.output);
    // "90 % of the transition" is 0.9*VDD for a rising output but 0.1*VDD for
    // a falling one.
    let level_90 = if rising { 0.9 } else { 0.1 };
    let t50 = out
        .crossing_fraction(0.5, vdd, rising)
        .ok_or_else(|| CharlibError::Measurement {
            what: "output 50% crossing".into(),
            input_slew,
            load,
        })?;
    let t90 = out
        .crossing_fraction(level_90, vdd, rising)
        .ok_or_else(|| CharlibError::Measurement {
            what: "output 90% crossing".into(),
            input_slew,
            load,
        })?;
    let dt = t90 - t50;
    // Exponential fit: going from 50 % to 90 % of the final value takes
    // R C ln(0.5 / 0.1) = R C ln 5.
    let resistance = dt / (load * 5.0f64.ln());
    Ok(DriverResistance {
        resistance,
        load,
        t50_to_t90: dt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_numeric::units::{ff, pf};

    #[test]
    fn resistance_is_in_the_expected_range_for_75x() {
        let spec = InverterSpec::sized_018(75.0);
        let r = driver_on_resistance(&spec, ps(100.0), pf(1.1), OutputTransition::Rising)
            .unwrap()
            .resistance;
        // The paper's 75X cases have line impedances of 65-80 ohms and show
        // initial steps slightly below half the supply, so Rs must be of the
        // same order as Z0.
        assert!(r > 30.0 && r < 140.0, "Rs(75X) = {r:.1} ohms");
    }

    #[test]
    fn resistance_scales_inversely_with_driver_size() {
        let r25 = driver_on_resistance(
            &InverterSpec::sized_018(25.0),
            ps(100.0),
            pf(1.0),
            OutputTransition::Rising,
        )
        .unwrap()
        .resistance;
        let r100 = driver_on_resistance(
            &InverterSpec::sized_018(100.0),
            ps(100.0),
            pf(1.0),
            OutputTransition::Rising,
        )
        .unwrap()
        .resistance;
        let ratio = r25 / r100;
        assert!(
            ratio > 2.5 && ratio < 6.0,
            "Rs should scale roughly 4x between 100X and 25X, got {ratio:.2}"
        );
    }

    #[test]
    fn resistance_is_insensitive_to_the_load_used_for_extraction() {
        // The paper's justification for using the total capacitance instead
        // of iterating with Ceff: the fitted Rs barely moves with the load.
        let spec = InverterSpec::sized_018(75.0);
        let r_small = driver_on_resistance(&spec, ps(100.0), ff(600.0), OutputTransition::Rising)
            .unwrap()
            .resistance;
        let r_large = driver_on_resistance(&spec, ps(100.0), pf(1.8), OutputTransition::Rising)
            .unwrap()
            .resistance;
        let spread = (r_small - r_large).abs() / r_large;
        assert!(
            spread < 0.35,
            "Rs varies too much with extraction load: {r_small:.1} vs {r_large:.1}"
        );
    }

    #[test]
    fn falling_transition_extraction_also_works() {
        let spec = InverterSpec::sized_018(75.0);
        let r = driver_on_resistance(&spec, ps(100.0), pf(1.0), OutputTransition::Falling)
            .unwrap()
            .resistance;
        assert!(r > 15.0 && r < 140.0, "Rs = {r:.1}");
    }
}
