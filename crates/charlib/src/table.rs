//! Two-dimensional timing lookup tables (the NLDM "delay" and
//! "output transition" tables).

use rlc_numeric::interp::interp2;

/// A pre-characterized timing table indexed by input transition time (rows)
/// and output load capacitance (columns), storing the 50 % propagation delay
/// and the 10–90 % output transition time — exactly the information the paper
/// assumes a standard cell library provides.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingTable {
    slew_axis: Vec<f64>,
    load_axis: Vec<f64>,
    delay: Vec<Vec<f64>>,
    transition: Vec<Vec<f64>>,
}

impl TimingTable {
    /// Creates a table from its axes and row-major value grids.
    ///
    /// # Panics
    /// Panics if the axes have fewer than two points, are not strictly
    /// increasing, or the grids do not match the axes.
    pub fn new(
        slew_axis: Vec<f64>,
        load_axis: Vec<f64>,
        delay: Vec<Vec<f64>>,
        transition: Vec<Vec<f64>>,
    ) -> Self {
        assert!(slew_axis.len() >= 2, "slew axis needs at least two points");
        assert!(load_axis.len() >= 2, "load axis needs at least two points");
        for axis in [&slew_axis, &load_axis] {
            for w in axis.windows(2) {
                assert!(w[1] > w[0], "table axes must be strictly increasing");
            }
        }
        for grid in [&delay, &transition] {
            assert_eq!(grid.len(), slew_axis.len(), "grid row count mismatch");
            for row in grid {
                assert_eq!(row.len(), load_axis.len(), "grid column count mismatch");
            }
        }
        TimingTable {
            slew_axis,
            load_axis,
            delay,
            transition,
        }
    }

    /// Input-transition axis (seconds).
    pub fn slew_axis(&self) -> &[f64] {
        &self.slew_axis
    }

    /// Load-capacitance axis (farads).
    pub fn load_axis(&self) -> &[f64] {
        &self.load_axis
    }

    /// 50 % propagation delay at the given input transition and load
    /// (bilinear interpolation, linear extrapolation outside the grid).
    pub fn delay(&self, input_slew: f64, load: f64) -> f64 {
        interp2(
            &self.slew_axis,
            &self.load_axis,
            &self.delay,
            input_slew,
            load,
        )
    }

    /// 10–90 % output transition time at the given input transition and load.
    pub fn transition(&self, input_slew: f64, load: f64) -> f64 {
        interp2(
            &self.slew_axis,
            &self.load_axis,
            &self.transition,
            input_slew,
            load,
        )
    }

    /// Both the delay and the output transition at the given point.
    pub fn lookup(&self, input_slew: f64, load: f64) -> (f64, f64) {
        (
            self.delay(input_slew, load),
            self.transition(input_slew, load),
        )
    }

    /// Largest characterized load (useful for sanity-checking extrapolation).
    pub fn max_load(&self) -> f64 {
        *self.load_axis.last().unwrap()
    }

    /// Smallest characterized load.
    pub fn min_load(&self) -> f64 {
        self.load_axis[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_numeric::approx_eq;

    fn synthetic_table() -> TimingTable {
        // delay = 10ps + 100ps * C/pF + 0.2 * slew; transition = 20ps + 200ps * C/pF
        let slews = vec![50e-12, 100e-12, 200e-12];
        let loads = vec![100e-15, 500e-15, 1000e-15, 2000e-15];
        let delay: Vec<Vec<f64>> = slews
            .iter()
            .map(|&s| {
                loads
                    .iter()
                    .map(|&c| 10e-12 + 100e-12 * (c / 1e-12) + 0.2 * s)
                    .collect()
            })
            .collect();
        let transition: Vec<Vec<f64>> = slews
            .iter()
            .map(|_| {
                loads
                    .iter()
                    .map(|&c| 20e-12 + 200e-12 * (c / 1e-12))
                    .collect()
            })
            .collect();
        TimingTable::new(slews, loads, delay, transition)
    }

    #[test]
    fn lookup_reproduces_bilinear_surface() {
        let t = synthetic_table();
        // On-grid point.
        assert!(approx_eq(
            t.delay(100e-12, 500e-15),
            10e-12 + 50e-12 + 20e-12,
            1e-9
        ));
        // Off-grid point (the synthetic surface is affine, so interpolation is exact).
        let d = t.delay(150e-12, 750e-15);
        assert!(approx_eq(d, 10e-12 + 75e-12 + 30e-12, 1e-9));
        let (d2, tr) = t.lookup(150e-12, 750e-15);
        assert!(approx_eq(d, d2, 1e-15));
        assert!(approx_eq(tr, 20e-12 + 150e-12, 1e-9));
    }

    #[test]
    fn extrapolation_beyond_grid_is_linear() {
        let t = synthetic_table();
        let d = t.delay(100e-12, 4000e-15);
        assert!(approx_eq(d, 10e-12 + 400e-12 + 20e-12, 1e-9));
        assert!(approx_eq(t.min_load(), 100e-15, 1e-18));
        assert!(approx_eq(t.max_load(), 2000e-15, 1e-18));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_axis_rejected() {
        let _ = TimingTable::new(
            vec![100e-12, 50e-12],
            vec![1e-15, 2e-15],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
        );
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn grid_shape_checked() {
        let _ = TimingTable::new(
            vec![50e-12, 100e-12],
            vec![1e-15, 2e-15],
            vec![vec![1.0, 1.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
        );
    }
}
