//! Two-dimensional timing lookup tables (the NLDM "delay" and
//! "output transition" tables).

use rlc_numeric::interp::interp2;

/// A pre-characterized timing table indexed by input transition time (rows)
/// and output load capacitance (columns), storing the 50 % propagation delay
/// and the 10–90 % output transition time — exactly the information the paper
/// assumes a standard cell library provides.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingTable {
    slew_axis: Vec<f64>,
    load_axis: Vec<f64>,
    delay: Vec<Vec<f64>>,
    transition: Vec<Vec<f64>>,
}

impl TimingTable {
    /// Creates a table from its axes and row-major value grids.
    ///
    /// # Panics
    /// Panics if the axes have fewer than two points, are not strictly
    /// increasing, or the grids do not match the axes.
    pub fn new(
        slew_axis: Vec<f64>,
        load_axis: Vec<f64>,
        delay: Vec<Vec<f64>>,
        transition: Vec<Vec<f64>>,
    ) -> Self {
        assert!(slew_axis.len() >= 2, "slew axis needs at least two points");
        assert!(load_axis.len() >= 2, "load axis needs at least two points");
        for axis in [&slew_axis, &load_axis] {
            for w in axis.windows(2) {
                assert!(w[1] > w[0], "table axes must be strictly increasing");
            }
        }
        for grid in [&delay, &transition] {
            assert_eq!(grid.len(), slew_axis.len(), "grid row count mismatch");
            for row in grid {
                assert_eq!(row.len(), load_axis.len(), "grid column count mismatch");
            }
        }
        TimingTable {
            slew_axis,
            load_axis,
            delay,
            transition,
        }
    }

    /// Input-transition axis (seconds).
    pub fn slew_axis(&self) -> &[f64] {
        &self.slew_axis
    }

    /// Load-capacitance axis (farads).
    pub fn load_axis(&self) -> &[f64] {
        &self.load_axis
    }

    /// Raw delay grid rows (one per slew-axis point), e.g. for persistence.
    pub fn delay_rows(&self) -> &[Vec<f64>] {
        &self.delay
    }

    /// Raw output-transition grid rows (one per slew-axis point).
    pub fn transition_rows(&self) -> &[Vec<f64>] {
        &self.transition
    }

    /// Clamps an interpolated table value to the physical (non-negative)
    /// range. `f64::max` alone would also turn a NaN (from a NaN query
    /// coordinate) into a plausible-looking 0.0; NaN must keep propagating so
    /// the caller's comparisons fail detectably instead.
    fn clamp_physical(value: f64) -> f64 {
        if value.is_nan() {
            value
        } else {
            value.max(0.0)
        }
    }

    /// 50 % propagation delay at the given input transition and load
    /// (bilinear interpolation, linear extrapolation outside the grid).
    ///
    /// The result is clamped to be non-negative: unbounded linear
    /// extrapolation far off the characterized grid can otherwise produce a
    /// negative delay, which is non-physical and silently corrupts downstream
    /// comparisons.
    pub fn delay(&self, input_slew: f64, load: f64) -> f64 {
        Self::clamp_physical(interp2(
            &self.slew_axis,
            &self.load_axis,
            &self.delay,
            input_slew,
            load,
        ))
    }

    /// 10–90 % output transition time at the given input transition and load,
    /// clamped to a non-negative (physical) value like [`TimingTable::delay`].
    pub fn transition(&self, input_slew: f64, load: f64) -> f64 {
        Self::clamp_physical(interp2(
            &self.slew_axis,
            &self.load_axis,
            &self.transition,
            input_slew,
            load,
        ))
    }

    /// Both the delay and the output transition at the given point.
    pub fn lookup(&self, input_slew: f64, load: f64) -> (f64, f64) {
        (
            self.delay(input_slew, load),
            self.transition(input_slew, load),
        )
    }

    /// Largest characterized load (useful for sanity-checking extrapolation).
    pub fn max_load(&self) -> f64 {
        *self.load_axis.last().unwrap()
    }

    /// Smallest characterized load.
    pub fn min_load(&self) -> f64 {
        self.load_axis[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_numeric::approx_eq;

    fn synthetic_table() -> TimingTable {
        // delay = 10ps + 100ps * C/pF + 0.2 * slew; transition = 20ps + 200ps * C/pF
        let slews = vec![50e-12, 100e-12, 200e-12];
        let loads = vec![100e-15, 500e-15, 1000e-15, 2000e-15];
        let delay: Vec<Vec<f64>> = slews
            .iter()
            .map(|&s| {
                loads
                    .iter()
                    .map(|&c| 10e-12 + 100e-12 * (c / 1e-12) + 0.2 * s)
                    .collect()
            })
            .collect();
        let transition: Vec<Vec<f64>> = slews
            .iter()
            .map(|_| {
                loads
                    .iter()
                    .map(|&c| 20e-12 + 200e-12 * (c / 1e-12))
                    .collect()
            })
            .collect();
        TimingTable::new(slews, loads, delay, transition)
    }

    #[test]
    fn lookup_reproduces_bilinear_surface() {
        let t = synthetic_table();
        // On-grid point.
        assert!(approx_eq(
            t.delay(100e-12, 500e-15),
            10e-12 + 50e-12 + 20e-12,
            1e-9
        ));
        // Off-grid point (the synthetic surface is affine, so interpolation is exact).
        let d = t.delay(150e-12, 750e-15);
        assert!(approx_eq(d, 10e-12 + 75e-12 + 30e-12, 1e-9));
        let (d2, tr) = t.lookup(150e-12, 750e-15);
        assert!(approx_eq(d, d2, 1e-15));
        assert!(approx_eq(tr, 20e-12 + 150e-12, 1e-9));
    }

    #[test]
    fn extrapolation_beyond_grid_is_linear() {
        let t = synthetic_table();
        let d = t.delay(100e-12, 4000e-15);
        assert!(approx_eq(d, 10e-12 + 400e-12 + 20e-12, 1e-9));
        assert!(approx_eq(t.min_load(), 100e-15, 1e-18));
        assert!(approx_eq(t.max_load(), 2000e-15, 1e-18));
    }

    #[test]
    fn far_corner_extrapolation_is_clamped_to_physical_values() {
        let t = synthetic_table();
        // Far below the characterized grid the linear extrapolation of the
        // raw surface goes negative (delay at slew=50ps, load=100fF is 30 ps
        // with a 100 ps/pF load slope, so a "load" of -1 pF would read
        // -70 ps); the lookup must clamp, not report time travel.
        let d = t.delay(50e-12, -1000e-15);
        assert_eq!(d, 0.0);
        let tr = t.transition(50e-12, -1000e-15);
        assert_eq!(tr, 0.0);
        let (d2, t2) = t.lookup(50e-12, -1000e-15);
        assert!(d2 >= 0.0 && t2 >= 0.0);
        // In-grid and mildly extrapolated lookups are unaffected.
        assert!(t.delay(100e-12, 500e-15) > 0.0);
        assert!(t.delay(100e-12, 4000e-15) > 0.0);
        // A NaN query must keep propagating as NaN, not become a clean 0.0.
        assert!(t.delay(f64::NAN, 500e-15).is_nan());
        assert!(t.transition(100e-12, f64::NAN).is_nan());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_axis_rejected() {
        let _ = TimingTable::new(
            vec![100e-12, 50e-12],
            vec![1e-15, 2e-15],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
        );
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn grid_shape_checked() {
        let _ = TimingTable::new(
            vec![50e-12, 100e-12],
            vec![1e-15, 2e-15],
            vec![vec![1.0, 1.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
        );
    }
}
