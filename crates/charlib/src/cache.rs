//! Persistent on-disk characterization cache.
//!
//! Characterizing one driver cell costs tens of transient simulations, and
//! every process used to pay that cost from scratch: [`crate::Library`] was
//! in-memory only. This module persists characterized cells in a cache
//! directory so warm processes skip the simulations entirely.
//!
//! ## Design
//!
//! * **Content-addressed keys.** A cell's cache key is a 64-bit FNV-1a hash
//!   over the *complete* characterization request: the format version, every
//!   field of the inverter description (widths, supply, both transistor
//!   models) and every knob of the [`CharacterizationGrid`] (both axes, the
//!   transient time step — the accuracy tolerance of the characterization —
//!   and the output transition). Changing any of them changes the key, so a
//!   stale entry can never be returned for a new request; invalidation is
//!   automatic and needs no manifest.
//! * **Versioned binary format.** Entries are stored in a hand-rolled binary
//!   format (the workspace is dependency-free by policy): a magic string, a
//!   format version, the echoed key, a length-prefixed payload holding the
//!   exact IEEE-754 bit patterns of the timing table, and a payload checksum.
//!   Loads re-derive the key and re-verify every field; any mismatch —
//!   truncation, stale version, foreign key, flipped payload bits — makes the
//!   load return `None` and the caller silently re-characterizes.
//! * **Atomic publication.** Writers serialize to a process/sequence-unique
//!   temporary file in the cache directory and `rename` it into place.
//!   Renames within a directory are atomic, so concurrent readers observe
//!   either no file or a complete one, never a torn write; concurrent writers
//!   of the same key race benignly (both produce identical bytes).
//!
//! Because the payload stores raw `f64` bit patterns, a warm load returns
//! tables **bit-identical** to the cold characterization that produced them.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use rlc_spice::mosfet::{MosfetParams, MosfetType};
use rlc_spice::testbench::{InverterSpec, OutputTransition};

use crate::cell::DriverCell;
use crate::characterize::CharacterizationGrid;
use crate::table::TimingTable;
use crate::CharlibError;

/// Magic bytes identifying a characterization cache entry.
const MAGIC: &[u8; 8] = b"RLCCHAR\0";

/// On-disk format version. Bump on any layout change: the version is hashed
/// into the content key *and* checked in the header, so old files are
/// silently ignored (and eventually overwritten) rather than misparsed.
pub const FORMAT_VERSION: u32 = 1;

/// Distinguishes temporary files from concurrent writers of the same key in
/// the same process (threads sharing one PID).
static TMP_NONCE: AtomicU64 = AtomicU64::new(0);

/// A directory of persisted characterization results.
///
/// Opened by [`crate::Library::open_cached`]; usable directly when a flow
/// manages its own lookups.
#[derive(Debug, Clone)]
pub struct CharCache {
    dir: PathBuf,
}

impl CharCache {
    /// Opens (creating if necessary) a cache directory.
    ///
    /// # Errors
    /// Returns [`CharlibError::Cache`] when the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, CharlibError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| {
            CharlibError::Cache(format!(
                "cannot create cache directory {}: {e}",
                dir.display()
            ))
        })?;
        Ok(CharCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content key of a characterization request: format version, full
    /// inverter description, and full grid (axes, time step, transition).
    ///
    /// The key is the FNV-1a hash of the *serialized* request — the same
    /// `encode_spec` used for the payload — so the keyed field list and the
    /// stored field list cannot silently diverge when fields are added.
    pub fn key(spec: &InverterSpec, grid: &CharacterizationGrid) -> u64 {
        let mut e = Encoder(Vec::new());
        e.u32(FORMAT_VERSION);
        encode_spec(&mut e, spec);
        e.f64_slice(&grid.slew_axis);
        e.f64_slice(&grid.load_axis);
        e.f64(grid.time_step);
        e.u8(transition_tag(grid.transition));
        fnv_of(&e.0)
    }

    /// Path of the entry for a key.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("cell-{key:016x}.bin"))
    }

    /// Loads the cell persisted for this characterization request, or `None`
    /// when there is no entry or the entry fails any validation (missing,
    /// truncated, stale format version, foreign key, corrupt payload). A
    /// `None` simply means "characterize and store again" — the cache never
    /// turns disk problems into analysis failures.
    pub fn load(&self, spec: &InverterSpec, grid: &CharacterizationGrid) -> Option<DriverCell> {
        let key = Self::key(spec, grid);
        let bytes = fs::read(self.entry_path(key)).ok()?;
        decode_entry(&bytes, key, spec)
    }

    /// Persists a characterized cell under the key of the request that
    /// produced it, atomically (write to a unique temporary file in the cache
    /// directory, then rename into place).
    ///
    /// # Errors
    /// Returns [`CharlibError::Cache`] on I/O failures. Callers that treat
    /// the cache as an optimization (the [`crate::Library`]) ignore the
    /// error; the characterized cell is still returned to the analysis.
    pub fn store(
        &self,
        cell: &DriverCell,
        grid: &CharacterizationGrid,
    ) -> Result<(), CharlibError> {
        let key = Self::key(cell.spec(), grid);
        let bytes = encode_entry(cell, key);
        let nonce = TMP_NONCE.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            ".cell-{key:016x}.{}.{nonce}.tmp",
            std::process::id()
        ));
        let write = (|| -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, self.entry_path(key))
        })();
        if let Err(e) = write {
            let _ = fs::remove_file(&tmp);
            return Err(CharlibError::Cache(format!(
                "cannot persist cache entry {}: {e}",
                self.entry_path(key).display()
            )));
        }
        Ok(())
    }
}

fn transition_tag(t: OutputTransition) -> u8 {
    match t {
        OutputTransition::Rising => 0,
        OutputTransition::Falling => 1,
    }
}

/// 64-bit FNV-1a: tiny, dependency-free, and stable across platforms (the
/// whole point of a shared on-disk cache).
fn fnv_of(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// --- serialization -------------------------------------------------------

struct Encoder(Vec<u8>);

impl Encoder {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn f64_slice(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }
}

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn f64_vec(&mut self) -> Option<Vec<f64>> {
        let n = self.u64()?;
        // A length prefix larger than the remaining bytes is corruption;
        // bail before reserving memory for it.
        if (n as usize).checked_mul(8)? > self.bytes.len() - self.pos {
            return None;
        }
        (0..n).map(|_| self.f64()).collect()
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Serializes the full inverter description — the single authoritative field
/// list shared by the content key and the payload.
fn encode_spec(e: &mut Encoder, spec: &InverterSpec) {
    e.f64(spec.nmos_width);
    e.f64(spec.pmos_width);
    e.f64(spec.vdd);
    encode_params(e, &spec.nmos);
    encode_params(e, &spec.pmos);
}

fn encode_params(e: &mut Encoder, params: &MosfetParams) {
    e.u8(match params.mos_type {
        MosfetType::Nmos => 0,
        MosfetType::Pmos => 1,
    });
    for v in [
        params.vth,
        params.alpha,
        params.k_sat,
        params.k_v,
        params.lambda,
        params.c_gate_per_width,
        params.c_junction_per_width,
    ] {
        e.f64(v);
    }
}

fn decode_params(d: &mut Decoder) -> Option<MosfetParams> {
    let mos_type = match d.u8()? {
        0 => MosfetType::Nmos,
        1 => MosfetType::Pmos,
        _ => return None,
    };
    Some(MosfetParams {
        mos_type,
        vth: d.f64()?,
        alpha: d.f64()?,
        k_sat: d.f64()?,
        k_v: d.f64()?,
        lambda: d.f64()?,
        c_gate_per_width: d.f64()?,
        c_junction_per_width: d.f64()?,
    })
}

/// Serializes a full cache entry (header + payload + checksum).
fn encode_entry(cell: &DriverCell, key: u64) -> Vec<u8> {
    let mut payload = Encoder(Vec::new());
    encode_spec(&mut payload, cell.spec());
    let table = cell.table();
    payload.f64_slice(table.slew_axis());
    payload.f64_slice(table.load_axis());
    for row in table.delay_rows() {
        payload.f64_slice(row);
    }
    for row in table.transition_rows() {
        payload.f64_slice(row);
    }
    payload.f64(cell.on_resistance());
    let payload = payload.0;

    let mut out = Encoder(Vec::with_capacity(payload.len() + 36));
    out.0.extend_from_slice(MAGIC);
    out.u32(FORMAT_VERSION);
    out.u64(key);
    out.u64(payload.len() as u64);
    out.0.extend_from_slice(&payload);
    out.u64(fnv_of(&payload));
    out.0
}

/// Parses and validates a cache entry; `None` on any inconsistency.
fn decode_entry(
    bytes: &[u8],
    expected_key: u64,
    expected_spec: &InverterSpec,
) -> Option<DriverCell> {
    let mut d = Decoder { bytes, pos: 0 };
    if d.take(MAGIC.len())? != MAGIC {
        return None;
    }
    if d.u32()? != FORMAT_VERSION {
        return None;
    }
    if d.u64()? != expected_key {
        return None;
    }
    let payload_len = d.u64()? as usize;
    let payload_start = d.pos;
    let payload = d.take(payload_len)?;
    let checksum = d.u64()?;
    if !d.done() || fnv_of(payload) != checksum {
        return None;
    }

    let mut d = Decoder {
        bytes: &bytes[payload_start..payload_start + payload_len],
        pos: 0,
    };
    let nmos_width = d.f64()?;
    let pmos_width = d.f64()?;
    let vdd = d.f64()?;
    let nmos = decode_params(&mut d)?;
    let pmos = decode_params(&mut d)?;
    let spec = InverterSpec {
        nmos_width,
        pmos_width,
        nmos,
        pmos,
        vdd,
    };
    // The 64-bit key is not collision-proof; the stored description must
    // also match the request field-for-field, so a colliding entry can never
    // hand back another cell's tables.
    if spec != *expected_spec {
        return None;
    }
    let slew_axis = d.f64_vec()?;
    let load_axis = d.f64_vec()?;
    if slew_axis.len() < 2 || load_axis.len() < 2 {
        return None;
    }
    let read_grid = |d: &mut Decoder| -> Option<Vec<Vec<f64>>> {
        (0..slew_axis.len())
            .map(|_| {
                let row = d.f64_vec()?;
                (row.len() == load_axis.len()).then_some(row)
            })
            .collect()
    };
    let delay = read_grid(&mut d)?;
    let transition_grid = read_grid(&mut d)?;
    let on_resistance = d.f64()?;
    if !d.done() {
        return None;
    }
    // TimingTable::new asserts on malformed axes; a corrupt-but-checksummed
    // entry must still degrade to a silent miss, never a panic. The
    // partial_cmp form also rejects NaN bit patterns.
    for axis in [&slew_axis, &load_axis] {
        let strictly_increasing = axis
            .windows(2)
            .all(|w| matches!(w[0].partial_cmp(&w[1]), Some(std::cmp::Ordering::Less)));
        if !strictly_increasing {
            return None;
        }
    }
    let table = TimingTable::new(slew_axis, load_axis, delay, transition_grid);
    // `from_parts` re-derives the resistance-extraction load from the table's
    // largest load, exactly as `characterize_spec` did when the entry was
    // written, so the reconstructed cell compares equal to the original.
    Some(DriverCell::from_parts(spec, table, on_resistance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_numeric::units::{ff, pf, ps};

    fn dummy_cell(size: f64) -> DriverCell {
        let slews = vec![ps(50.0), ps(100.0)];
        let loads = vec![ff(100.0), pf(1.0)];
        let grid = vec![vec![ps(10.0), ps(50.0)], vec![ps(12.0), ps(55.0)]];
        DriverCell::from_parts(
            InverterSpec::sized_018(size),
            TimingTable::new(slews, loads, grid.clone(), grid),
            33.0,
        )
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rlc-charcache-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let dir = tmp_dir("roundtrip");
        let cache = CharCache::open(&dir).unwrap();
        let grid = CharacterizationGrid::coarse_for_tests();
        let cell = dummy_cell(75.0);
        assert!(cache.load(cell.spec(), &grid).is_none());
        cache.store(&cell, &grid).unwrap();
        let loaded = cache.load(cell.spec(), &grid).expect("entry must load");
        assert_eq!(loaded, cell);
        // Bit-level identity of every table entry.
        for (a, b) in cell
            .table()
            .slew_axis()
            .iter()
            .zip(loaded.table().slew_axis())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_covers_cell_grid_and_tolerance() {
        let grid = CharacterizationGrid::coarse_for_tests();
        let spec = InverterSpec::sized_018(75.0);
        let base = CharCache::key(&spec, &grid);
        // Different cell.
        assert_ne!(base, CharCache::key(&InverterSpec::sized_018(50.0), &grid));
        // Different supply on the same geometry.
        let mut lv = spec;
        lv.vdd = 1.2;
        assert_ne!(base, CharCache::key(&lv, &grid));
        // Different grid axes.
        let mut g = grid.clone();
        g.load_axis.push(pf(5.0));
        assert_ne!(base, CharCache::key(&spec, &g));
        // Different tolerance (transient time step).
        let mut g = grid.clone();
        g.time_step *= 0.5;
        assert_ne!(base, CharCache::key(&spec, &g));
        // Different transition direction.
        let mut g = grid.clone();
        g.transition = OutputTransition::Falling;
        assert_ne!(base, CharCache::key(&spec, &g));
        // Same request, same key.
        assert_eq!(
            base,
            CharCache::key(&spec, &CharacterizationGrid::coarse_for_tests())
        );
    }

    #[test]
    fn corrupt_entries_degrade_to_misses() {
        let dir = tmp_dir("corrupt");
        let cache = CharCache::open(&dir).unwrap();
        let grid = CharacterizationGrid::coarse_for_tests();
        let cell = dummy_cell(60.0);
        cache.store(&cell, &grid).unwrap();
        let path = cache.entry_path(CharCache::key(cell.spec(), &grid));
        let good = fs::read(&path).unwrap();

        // Truncated anywhere: miss.
        for cut in [0, 4, MAGIC.len() + 3, good.len() / 2, good.len() - 1] {
            fs::write(&path, &good[..cut]).unwrap();
            assert!(cache.load(cell.spec(), &grid).is_none(), "cut at {cut}");
        }
        // Stale format version: miss.
        let mut stale = good.clone();
        stale[MAGIC.len()] = FORMAT_VERSION as u8 + 1;
        fs::write(&path, &stale).unwrap();
        assert!(cache.load(cell.spec(), &grid).is_none());
        // Payload bit flip: checksum catches it.
        let mut flipped = good.clone();
        let payload_byte = MAGIC.len() + 4 + 8 + 8 + 10;
        flipped[payload_byte] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        assert!(cache.load(cell.spec(), &grid).is_none());
        // Trailing garbage: miss.
        let mut long = good.clone();
        long.push(0);
        fs::write(&path, &long).unwrap();
        assert!(cache.load(cell.spec(), &grid).is_none());
        // The intact bytes still load.
        fs::write(&path, &good).unwrap();
        assert_eq!(cache.load(cell.spec(), &grid).unwrap(), cell);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_under_a_foreign_key_is_rejected() {
        let dir = tmp_dir("foreign");
        let cache = CharCache::open(&dir).unwrap();
        let grid = CharacterizationGrid::coarse_for_tests();
        let cell = dummy_cell(60.0);
        cache.store(&cell, &grid).unwrap();
        // Pretend the 60X entry were the 75X one: the echoed key inside the
        // file no longer matches the derived key, so the load must miss
        // rather than hand back the wrong cell.
        let other = InverterSpec::sized_018(75.0);
        fs::rename(
            cache.entry_path(CharCache::key(cell.spec(), &grid)),
            cache.entry_path(CharCache::key(&other, &grid)),
        )
        .unwrap();
        assert!(cache.load(&other, &grid).is_none());
        assert!(cache.load(cell.spec(), &grid).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_collision_cannot_return_another_cells_tables() {
        // Simulate a 64-bit key collision: re-stamp a 60X entry's echoed key
        // (and file name) with the 75X key, leaving the payload intact. The
        // echoed-key check then passes, so only the stored-spec comparison
        // stands between the request and the wrong cell's tables.
        let dir = tmp_dir("collision");
        let cache = CharCache::open(&dir).unwrap();
        let grid = CharacterizationGrid::coarse_for_tests();
        let cell = dummy_cell(60.0);
        cache.store(&cell, &grid).unwrap();

        let other = InverterSpec::sized_018(75.0);
        let other_key = CharCache::key(&other, &grid);
        let mut bytes = fs::read(cache.entry_path(CharCache::key(cell.spec(), &grid))).unwrap();
        bytes[MAGIC.len() + 4..MAGIC.len() + 12].copy_from_slice(&other_key.to_le_bytes());
        fs::write(cache.entry_path(other_key), &bytes).unwrap();
        assert!(cache.load(&other, &grid).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_an_unusable_directory() {
        // A path through an existing *file* cannot become a directory.
        let blocker =
            std::env::temp_dir().join(format!("rlc-charcache-blocker-{}", std::process::id()));
        fs::write(&blocker, b"x").unwrap();
        let err = CharCache::open(blocker.join("sub")).unwrap_err();
        assert!(matches!(err, CharlibError::Cache(_)));
        assert!(err.to_string().contains("cache"));
        let _ = fs::remove_file(&blocker);
    }
}
