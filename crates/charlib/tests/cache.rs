//! Integration tests of the persistent characterization cache through the
//! `Library` front: warm starts must be bit-identical and characterization-
//! free, damaged stores must silently fall back to re-characterization, and
//! concurrent writers must never leave a torn file behind.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use rlc_charlib::cache::CharCache;
use rlc_charlib::{CharacterizationGrid, DriverCell, Library, TimingTable};
use rlc_numeric::units::{ff, pf, ps};
use rlc_spice::testbench::InverterSpec;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rlc-libcache-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A synthetic cell (no simulations) for tests that exercise only the store.
fn dummy_cell(size: f64) -> DriverCell {
    let slews = vec![ps(50.0), ps(100.0), ps(200.0)];
    let loads = vec![ff(50.0), ff(200.0), ff(800.0), pf(2.0)];
    let grid: Vec<Vec<f64>> = slews
        .iter()
        .map(|&s| loads.iter().map(|&c| 0.1 * s + 50.0 * c).collect())
        .collect();
    DriverCell::from_parts(
        InverterSpec::sized_018(size),
        TimingTable::new(slews, loads, grid.clone(), grid),
        42.5,
    )
}

#[test]
fn warm_start_is_characterization_free_and_bit_identical() {
    let dir = tmp_dir("warm");
    let grid = CharacterizationGrid::coarse_for_tests();

    // Cold process: one real characterization, persisted on the way out.
    let mut cold = Library::open_cached_with_grid(&dir, grid.clone()).unwrap();
    let first = cold.get_or_characterize(75.0).unwrap();
    assert_eq!(cold.characterizations_run(), 1);
    assert_eq!(cold.disk_cache_hits(), 0);
    // The same query again is served from memory, not by re-characterizing.
    let again = cold.get_or_characterize(75.0).unwrap();
    assert!(Arc::ptr_eq(&first, &again));
    assert_eq!(cold.characterizations_run(), 1);
    drop(cold);

    // Warm process: zero characterizations, tables bit-identical.
    let mut warm = Library::open_cached_with_grid(&dir, grid).unwrap();
    let cached = warm.get_or_characterize(75.0).unwrap();
    assert_eq!(
        warm.characterizations_run(),
        0,
        "warm start must not simulate"
    );
    assert_eq!(warm.disk_cache_hits(), 1);
    assert_eq!(*cached, *first);
    let (a, b) = (cached.table(), first.table());
    for (ra, rb) in a.delay_rows().iter().zip(b.delay_rows()) {
        for (va, vb) in ra.iter().zip(rb) {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "delay tables must be bit-identical"
            );
        }
    }
    for (ra, rb) in a.transition_rows().iter().zip(b.transition_rows()) {
        for (va, vb) in ra.iter().zip(rb) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }
    assert_eq!(
        cached.on_resistance().to_bits(),
        first.on_resistance().to_bits()
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn grid_change_invalidates_the_key() {
    let dir = tmp_dir("invalidate");
    let grid = CharacterizationGrid::coarse_for_tests();
    let cache = CharCache::open(&dir).unwrap();
    let cell = dummy_cell(75.0);
    cache.store(&cell, &grid).unwrap();
    assert!(cache.load(cell.spec(), &grid).is_some());

    // A different tolerance (time step) or grid must miss — through the
    // Library this triggers re-characterization rather than a wrong-grid hit.
    let mut finer = grid.clone();
    finer.time_step /= 2.0;
    assert!(cache.load(cell.spec(), &finer).is_none());
    let mut wider = grid.clone();
    wider.load_axis.push(pf(5.0));
    assert!(cache.load(cell.spec(), &wider).is_none());
    // And so must a different cell under the same grid.
    assert!(cache.load(&InverterSpec::sized_018(100.0), &grid).is_none());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn damaged_store_falls_back_to_recharacterization() {
    let dir = tmp_dir("damaged");
    let grid = CharacterizationGrid::coarse_for_tests();

    let mut lib = Library::open_cached_with_grid(&dir, grid.clone()).unwrap();
    let original = lib.get_or_characterize(75.0).unwrap();
    assert_eq!(lib.characterizations_run(), 1);
    let entry = lib
        .cache()
        .unwrap()
        .entry_path(CharCache::key(&InverterSpec::sized_018(75.0), &grid));
    let good = fs::read(&entry).unwrap();

    // Truncated entry: a fresh library silently re-characterizes (no panic,
    // no wrong data) and heals the store by persisting the new result.
    fs::write(&entry, &good[..good.len() / 3]).unwrap();
    let mut healed = Library::open_cached_with_grid(&dir, grid.clone()).unwrap();
    let re = healed.get_or_characterize(75.0).unwrap();
    assert_eq!(healed.characterizations_run(), 1);
    assert_eq!(healed.disk_cache_hits(), 0);
    assert_eq!(*re, *original);
    let repaired = fs::read(&entry).unwrap();
    assert_eq!(repaired, good, "healed entry must match the original bytes");

    // Stale format version: same silent fallback.
    let mut stale = good.clone();
    stale[8] ^= 0xff; // first byte of the little-endian format version
    fs::write(&entry, &stale).unwrap();
    let mut lib = Library::open_cached_with_grid(&dir, grid.clone()).unwrap();
    lib.get_or_characterize(75.0).unwrap();
    assert_eq!(lib.characterizations_run(), 1);

    // Entry parked under the wrong key (e.g. a renamed file): never a
    // wrong-cell hit.
    fs::write(&entry, &good).unwrap();
    let foreign = lib
        .cache()
        .unwrap()
        .entry_path(CharCache::key(&InverterSpec::sized_018(25.0), &grid));
    fs::rename(&entry, &foreign).unwrap();
    let mut lib = Library::open_cached_with_grid(&dir, grid).unwrap();
    let cell = lib.get_or_characterize(25.0).unwrap();
    assert_eq!(cell.size(), 25.0);
    assert_eq!(
        lib.characterizations_run(),
        1,
        "foreign-key entry must be ignored, not returned"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_round_trip_cleanly() {
    let dir = tmp_dir("concurrent");
    let grid = CharacterizationGrid::coarse_for_tests();
    let cell = dummy_cell(60.0);

    // Two writers hammer the same key while a reader polls it: the atomic
    // write-rename protocol means every successful load parses to exactly
    // the written cell — a torn or half-renamed file would either fail the
    // decode (load = None, acceptable) or produce a different cell (never
    // acceptable).
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let dir = &dir;
            let grid = &grid;
            let cell = &cell;
            scope.spawn(move || {
                let cache = CharCache::open(dir).unwrap();
                for _ in 0..50 {
                    cache.store(cell, grid).unwrap();
                }
            });
        }
        let dir = &dir;
        let grid = &grid;
        let cell = &cell;
        scope.spawn(move || {
            let cache = CharCache::open(dir).unwrap();
            let mut hits = 0;
            for _ in 0..200 {
                if let Some(loaded) = cache.load(cell.spec(), grid) {
                    assert_eq!(&loaded, cell, "a load must never observe a torn entry");
                    hits += 1;
                }
            }
            hits
        });
    });

    // After the dust settles the entry is complete and correct, and no
    // temporary files leak.
    let cache = CharCache::open(&dir).unwrap();
    assert_eq!(cache.load(cell.spec(), &grid).unwrap(), cell);
    let leftovers: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temporary files must not leak: {leftovers:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn two_worker_processes_share_one_cache_dir() {
    const CHILD_ENV: &str = "RLC_CACHE_TEST_CHILD_DIR";
    if let Ok(dir) = std::env::var(CHILD_ENV) {
        // Child mode: a second *process* (the shard-worker scenario) opens
        // the same cache directory and must warm-start without running a
        // single characterization.
        let mut lib =
            Library::open_cached_with_grid(dir, CharacterizationGrid::coarse_for_tests()).unwrap();
        let cell = lib.get_or_characterize(75.0).unwrap();
        assert_eq!(cell.size(), 75.0);
        println!("CHILD_CHARS_RUN={}", lib.characterizations_run());
        println!("CHILD_DISK_HITS={}", lib.disk_cache_hits());
        return;
    }

    let dir = tmp_dir("two-process");
    let grid = CharacterizationGrid::coarse_for_tests();
    let mut cold = Library::open_cached_with_grid(&dir, grid).unwrap();
    cold.get_or_characterize(75.0).unwrap();
    assert_eq!(cold.characterizations_run(), 1);
    drop(cold);

    // Re-run only this test in a child process, pointed at the same dir.
    let output = std::process::Command::new(std::env::current_exe().unwrap())
        .args([
            "--exact",
            "two_worker_processes_share_one_cache_dir",
            "--nocapture",
        ])
        .env(CHILD_ENV, &dir)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "child process failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("CHILD_CHARS_RUN=0"),
        "the second process must not re-characterize:\n{stdout}"
    );
    assert!(
        stdout.contains("CHILD_DISK_HITS=1"),
        "the second process must hit the shared disk cache:\n{stdout}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn shared_cache_dir_serves_multiple_grids_and_cells() {
    let dir = tmp_dir("multigrid");
    let coarse = CharacterizationGrid::coarse_for_tests();
    let mut finer = coarse.clone();
    finer.time_step /= 2.0;

    let cache = CharCache::open(&dir).unwrap();
    let small = dummy_cell(25.0);
    let large = dummy_cell(125.0);
    cache.store(&small, &coarse).unwrap();
    cache.store(&large, &coarse).unwrap();
    cache.store(&small, &finer).unwrap();

    assert_eq!(cache.load(small.spec(), &coarse).unwrap(), small);
    assert_eq!(cache.load(large.spec(), &coarse).unwrap(), large);
    assert_eq!(cache.load(small.spec(), &finer).unwrap(), small);
    assert!(cache.load(large.spec(), &finer).is_none());
    let _ = fs::remove_dir_all(&dir);
}
