//! Parasitic extraction: geometry → total R, L, C.
//!
//! The paper extracts its line parasitics with "an industry standard 3D field
//! solver". We cannot run that solver, so two substitutes are provided:
//!
//! * [`EmpiricalExtractor`] — per-unit-length models *fitted to the parasitic
//!   values the paper itself publishes* (15 Table 1 rows plus the figure
//!   captions, covering widths 0.8–3.0 µm and lengths 3–7 mm). Within that
//!   range it reproduces the published values to within a few percent, and it
//!   extrapolates smoothly over the full sweep range of the paper
//!   (1–7 mm, 0.8–3.5 µm).
//! * [`PhysicalExtractor`] — textbook closed forms (sheet resistance,
//!   Sakurai–Tamaru capacitance, loop inductance with an effective return
//!   distance) parameterized by [`Technology`]. Used for cross-checks.

use crate::geometry::WireGeometry;
use crate::line::RlcLine;
use crate::technology::{Technology, MU0};

/// Maps a wire geometry to an extracted [`RlcLine`].
pub trait Extractor {
    /// Extracts total parasitics for the given geometry.
    fn extract(&self, geometry: &WireGeometry) -> RlcLine;
}

/// Empirical per-unit-length extraction calibrated against the parasitics
/// published in the paper.
///
/// With width `w` in µm and length `l` in mm:
///
/// * `R/l [ohm/mm] = (r_a + r_b * w) / w` — the effective sheet resistance
///   grows slightly with width in the published data (wide-wire current
///   crowding / cheesing in the real stack).
/// * `C/l [pF/mm] = c_area * w + c_fringe` — classic area + fringe split.
/// * `L/l [nH/mm] = l_a - l_b * ln(w)` — the logarithmic width dependence of
///   partial/loop inductance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmpiricalExtractor {
    /// Sheet-resistance intercept (ohm·µm/mm).
    pub r_a: f64,
    /// Sheet-resistance slope (ohm/mm per µm of width... dimensionally ohm/mm).
    pub r_b: f64,
    /// Area capacitance (pF/mm per µm of width).
    pub c_area: f64,
    /// Fringe capacitance (pF/mm).
    pub c_fringe: f64,
    /// Inductance intercept (nH/mm).
    pub l_a: f64,
    /// Inductance log-width slope (nH/mm per natural log of µm).
    pub l_b: f64,
}

impl EmpiricalExtractor {
    /// Coefficients fitted to the paper's published 0.18 µm parasitics.
    pub fn cmos018() -> Self {
        EmpiricalExtractor {
            r_a: 20.4,
            r_b: 1.73,
            c_area: 0.0573,
            c_fringe: 0.128,
            l_a: 1.072,
            l_b: 0.126,
        }
    }

    /// Resistance per millimetre (ohm/mm) at a width in µm.
    pub fn r_per_mm(&self, width_um: f64) -> f64 {
        (self.r_a + self.r_b * width_um) / width_um
    }

    /// Capacitance per millimetre (pF/mm) at a width in µm.
    pub fn c_per_mm(&self, width_um: f64) -> f64 {
        self.c_area * width_um + self.c_fringe
    }

    /// Inductance per millimetre (nH/mm) at a width in µm.
    pub fn l_per_mm(&self, width_um: f64) -> f64 {
        self.l_a - self.l_b * width_um.ln()
    }
}

impl Default for EmpiricalExtractor {
    fn default() -> Self {
        Self::cmos018()
    }
}

impl Extractor for EmpiricalExtractor {
    fn extract(&self, geometry: &WireGeometry) -> RlcLine {
        let w = geometry.width_um();
        let l = geometry.length_mm();
        let r = self.r_per_mm(w) * l;
        let c = self.c_per_mm(w) * l * 1e-12;
        let ind = self.l_per_mm(w) * l * 1e-9;
        RlcLine::new(r, ind, c, geometry.length)
    }
}

/// Closed-form physical extraction from [`Technology`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhysicalExtractor {
    /// Back-end technology parameters.
    pub technology: Technology,
}

impl PhysicalExtractor {
    /// Creates a physical extractor for the calibrated 0.18 µm technology.
    pub fn cmos018() -> Self {
        PhysicalExtractor {
            technology: Technology::cmos018(),
        }
    }

    /// Series resistance (ohms): `rho * l / (w * t)`.
    pub fn resistance(&self, geometry: &WireGeometry) -> f64 {
        self.technology.sheet_resistance() * geometry.length / geometry.width
    }

    /// Shunt capacitance (farads) using the Sakurai–Tamaru single-line
    /// formula `C/l = eps * (1.15 w/h + 2.80 (t/h)^0.222)`.
    pub fn capacitance(&self, geometry: &WireGeometry) -> f64 {
        let t = &self.technology;
        let w_over_h = geometry.width / t.dielectric_height;
        let t_over_h = t.metal_thickness / t.dielectric_height;
        let c_per_len = t.permittivity() * (1.15 * w_over_h + 2.80 * t_over_h.powf(0.222));
        c_per_len * geometry.length
    }

    /// Loop inductance (henries): `mu0 l / (2 pi) * (ln(2 d / (w + t)) + 0.5)`
    /// with `d` the technology's effective return distance.
    pub fn inductance(&self, geometry: &WireGeometry) -> f64 {
        let t = &self.technology;
        let denom = geometry.width + t.metal_thickness;
        let ln_term = (2.0 * t.return_distance / denom).ln() + 0.5;
        MU0 * geometry.length / (2.0 * std::f64::consts::PI) * ln_term
    }
}

impl Extractor for PhysicalExtractor {
    fn extract(&self, geometry: &WireGeometry) -> RlcLine {
        RlcLine::new(
            self.resistance(geometry),
            self.inductance(geometry),
            self.capacitance(geometry),
            geometry.length,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_cases;
    use rlc_numeric::units::{mm, um};

    #[test]
    fn empirical_extractor_reproduces_every_published_case() {
        let ex = EmpiricalExtractor::cmos018();
        for case in paper_cases::all_published_parasitics() {
            let geom = WireGeometry::new(mm(case.length_mm), um(case.width_um));
            let line = ex.extract(&geom);
            let r_err = (line.resistance() - case.r_ohms).abs() / case.r_ohms;
            let l_err = (line.inductance() - case.l_nh * 1e-9).abs() / (case.l_nh * 1e-9);
            let c_err = (line.capacitance() - case.c_pf * 1e-12).abs() / (case.c_pf * 1e-12);
            assert!(
                r_err < 0.05,
                "{}: R error {:.1}% ({:.2} vs {:.2})",
                case.label,
                r_err * 100.0,
                line.resistance(),
                case.r_ohms
            );
            assert!(
                l_err < 0.06,
                "{}: L error {:.1}%",
                case.label,
                l_err * 100.0
            );
            assert!(
                c_err < 0.06,
                "{}: C error {:.1}%",
                case.label,
                c_err * 100.0
            );
        }
    }

    #[test]
    fn empirical_per_unit_trends_are_physical() {
        let ex = EmpiricalExtractor::cmos018();
        // Wider wires: lower resistance, higher capacitance, lower inductance.
        assert!(ex.r_per_mm(3.0) < ex.r_per_mm(0.8));
        assert!(ex.c_per_mm(3.0) > ex.c_per_mm(0.8));
        assert!(ex.l_per_mm(3.0) < ex.l_per_mm(0.8));
    }

    #[test]
    fn physical_extractor_is_in_the_same_ballpark_as_empirical() {
        let phys = PhysicalExtractor::cmos018();
        let emp = EmpiricalExtractor::cmos018();
        for &w in &[0.8, 1.6, 3.0] {
            let geom = WireGeometry::new(mm(5.0), um(w));
            let p = phys.extract(&geom);
            let e = emp.extract(&geom);
            let ratio_r = p.resistance() / e.resistance();
            let ratio_c = p.capacitance() / e.capacitance();
            let ratio_l = p.inductance() / e.inductance();
            assert!(ratio_r > 0.6 && ratio_r < 1.6, "R ratio {ratio_r} at w={w}");
            assert!(ratio_c > 0.6 && ratio_c < 1.6, "C ratio {ratio_c} at w={w}");
            assert!(ratio_l > 0.6 && ratio_l < 1.6, "L ratio {ratio_l} at w={w}");
        }
    }

    #[test]
    fn extraction_scales_linearly_with_length() {
        let ex = EmpiricalExtractor::cmos018();
        let short = ex.extract(&WireGeometry::new(mm(1.0), um(1.6)));
        let long = ex.extract(&WireGeometry::new(mm(7.0), um(1.6)));
        let ratio = long.resistance() / short.resistance();
        assert!((ratio - 7.0).abs() < 1e-9);
        assert!((long.capacitance() / short.capacitance() - 7.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod sweep_tests {
    use super::*;
    use rlc_numeric::units::{mm, um};

    const LENGTHS_MM: [f64; 5] = [1.0, 2.5, 4.0, 5.5, 6.9];
    const WIDTHS_UM: [f64; 5] = [0.8, 1.4, 2.0, 2.7, 3.4];

    /// Over the paper's sweep range the extracted line is always
    /// physically sensible: positive parasitics, Z0 in the tens of ohms,
    /// time of flight far below 1 ns.
    #[test]
    fn extracted_lines_are_physical() {
        for &length_mm in &LENGTHS_MM {
            for &width_um in &WIDTHS_UM {
                let line = EmpiricalExtractor::cmos018()
                    .extract(&WireGeometry::new(mm(length_mm), um(width_um)));
                assert!(line.resistance() > 0.0, "{length_mm} mm / {width_um} um");
                assert!(line.characteristic_impedance() > 30.0);
                assert!(line.characteristic_impedance() < 120.0);
                assert!(line.time_of_flight() < 0.2e-9);
            }
        }
    }

    /// The two extraction back-ends never disagree by more than ~2x over
    /// the calibrated range (they model the same physical stack).
    #[test]
    fn backends_stay_within_2x() {
        for &length_mm in &LENGTHS_MM {
            for &width_um in &WIDTHS_UM {
                let geom = WireGeometry::new(mm(length_mm), um(width_um));
                let e = EmpiricalExtractor::cmos018().extract(&geom);
                let p = PhysicalExtractor::cmos018().extract(&geom);
                for (a, b) in [
                    (e.resistance(), p.resistance()),
                    (e.capacitance(), p.capacitance()),
                    (e.inductance(), p.inductance()),
                ] {
                    let ratio = a / b;
                    assert!(
                        ratio > 0.5 && ratio < 2.0,
                        "{length_mm} mm / {width_um} um: ratio {ratio}"
                    );
                }
            }
        }
    }
}
