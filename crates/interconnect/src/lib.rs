//! # rlc-interconnect
//!
//! On-chip interconnect modelling for the RLC effective-capacitance
//! reproduction: wire geometry, a calibrated 0.18 µm back-end technology
//! description, parasitic extraction (the stand-in for the paper's
//! "industry standard 3D field solver"), transmission-line properties and
//! the published parasitic values of every experiment in the paper.
//!
//! Two extraction back-ends are provided:
//!
//! * [`extraction::EmpiricalExtractor`] — per-unit-length R/L/C fitted to the
//!   values the paper publishes for its 0.18 µm technology (Table 1 and the
//!   figure captions). This is the default used to regenerate experiments,
//!   and it reproduces every published value to within a few percent.
//! * [`extraction::PhysicalExtractor`] — closed-form sheet-resistance,
//!   Sakurai–Tamaru capacitance and partial-inductance formulas, useful for
//!   sanity checks and for geometries outside the calibrated range.
//!
//! ```
//! use rlc_interconnect::prelude::*;
//!
//! let geom = WireGeometry::new(mm(5.0), um(1.6));
//! let line = EmpiricalExtractor::cmos018().extract(&geom);
//! // The paper's 5 mm / 1.6 um line: R = 72.44 ohm, L = 5.14 nH, C = 1.10 pF.
//! assert!((line.resistance() - 72.44).abs() / 72.44 < 0.05);
//! assert!((line.inductance() - 5.14e-9).abs() / 5.14e-9 < 0.05);
//! assert!((line.capacitance() - 1.10e-12).abs() / 1.10e-12 < 0.05);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod extraction;
pub mod geometry;
pub mod line;
pub mod paper_cases;
pub mod technology;
pub mod topology;

pub use extraction::{EmpiricalExtractor, Extractor, PhysicalExtractor};
pub use geometry::WireGeometry;
pub use line::RlcLine;
pub use technology::Technology;
pub use topology::{BranchId, CoupledBus, NetTopology, RlcTree, Sink, SinkNode, TreeBranch};

/// Convenient glob import.
pub mod prelude {
    pub use crate::extraction::{EmpiricalExtractor, Extractor, PhysicalExtractor};
    pub use crate::geometry::WireGeometry;
    pub use crate::line::RlcLine;
    pub use crate::paper_cases;
    pub use crate::technology::Technology;
    pub use crate::topology::{
        BranchId, CoupledBus, NetTopology, RlcTree, Sink, SinkNode, TreeBranch,
    };
    pub use rlc_numeric::units::{ff, mm, nh, pf, ps, um};
}
