//! Net-topology IR: the generalized load descriptions behind the suite's
//! analysis layers.
//!
//! The paper derives its flow for one point-to-point RLC line, but real nets
//! branch and couple. [`NetTopology`] captures the two generalizations the
//! rest of the workspace consumes:
//!
//! * [`RlcTree`] — a tree of uniform RLC branch segments with **named sinks**
//!   (receiver pins with load capacitance). A one-branch tree is exactly the
//!   paper's line, and the single-line APIs are thin wrappers over it.
//! * [`CoupledBus`] — two parallel lines (victim and aggressor) coupled by a
//!   distributed coupling capacitance and a mutual inductance, the minimal
//!   crosstalk scenario.
//!
//! Both variants synthesize themselves into an [`rlc_spice`] circuit through
//! one shared path (`add_to_circuit`), which replaces the previous ad-hoc
//! per-load ladder construction.

use rlc_spice::circuit::{Circuit, NodeId};
use rlc_spice::testbench::add_rlc_ladder;

use crate::line::RlcLine;

/// Identifier of a branch within an [`RlcTree`] (an index handed out by
/// [`RlcTree::add_branch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchId(usize);

impl BranchId {
    /// Raw index of the branch in tree order (parents precede children).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A named sink: a receiver pin with its load capacitance, attached at the
/// far end of a tree branch.
#[derive(Debug, Clone, PartialEq)]
pub struct Sink {
    /// Sink (pin) name, unique within the tree.
    pub name: String,
    /// Load capacitance at the sink (farads, non-negative).
    pub c_load: f64,
}

/// One branch of an [`RlcTree`]: a uniform RLC segment whose near end
/// attaches to the driving point (no parent) or to the far end of its parent
/// branch, optionally carrying a [`Sink`] at its far end.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeBranch {
    line: RlcLine,
    parent: Option<BranchId>,
    sink: Option<Sink>,
}

impl TreeBranch {
    /// The uniform RLC segment of this branch.
    pub fn line(&self) -> &RlcLine {
        &self.line
    }

    /// The parent branch, or `None` when the branch starts at the driving
    /// point.
    pub fn parent(&self) -> Option<BranchId> {
        self.parent
    }

    /// The sink at the branch's far end, if one was declared.
    pub fn sink(&self) -> Option<&Sink> {
        self.sink.as_ref()
    }
}

/// A tree of RLC branch segments with named sinks.
///
/// ```
/// use rlc_interconnect::{RlcLine, RlcTree};
/// use rlc_numeric::units::{ff, mm, nh, pf};
///
/// // A trunk that splits into two receiver branches.
/// let trunk = RlcLine::new(30.0, nh(2.0), pf(0.5), mm(2.0));
/// let stub = RlcLine::new(20.0, nh(1.2), pf(0.3), mm(1.0));
/// let mut tree = RlcTree::new();
/// let t = tree.add_branch(None, trunk);
/// let left = tree.add_branch(Some(t), stub);
/// let right = tree.add_branch(Some(t), stub);
/// tree.set_sink(left, "rx0", ff(15.0));
/// tree.set_sink(right, "rx1", ff(25.0));
/// assert_eq!(tree.num_branches(), 3);
/// assert!((tree.total_capacitance() - (1.1e-12 + 40e-15)).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RlcTree {
    branches: Vec<TreeBranch>,
}

impl RlcTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RlcTree::default()
    }

    /// The one-branch tree equivalent to the paper's point-to-point line
    /// terminated by `c_load`, with a single sink named `"far"`.
    ///
    /// # Panics
    /// Panics if `c_load` is negative or not finite.
    pub fn single_line(line: RlcLine, c_load: f64) -> Self {
        let mut tree = RlcTree::new();
        let branch = tree.add_branch(None, line);
        tree.set_sink(branch, "far", c_load);
        tree
    }

    /// Appends a branch whose near end attaches to `parent`'s far end (or the
    /// driving point when `parent` is `None`) and returns its id. Branches
    /// are stored in insertion order, so parents always precede children.
    ///
    /// # Panics
    /// Panics if `parent` does not refer to an existing branch of this tree.
    pub fn add_branch(&mut self, parent: Option<BranchId>, line: RlcLine) -> BranchId {
        if let Some(p) = parent {
            assert!(
                p.0 < self.branches.len(),
                "parent branch {} does not exist",
                p.0
            );
        }
        self.branches.push(TreeBranch {
            line,
            parent,
            sink: None,
        });
        BranchId(self.branches.len() - 1)
    }

    /// Declares (or replaces) the named sink at `branch`'s far end.
    ///
    /// # Panics
    /// Panics if the branch does not exist, `c_load` is negative or not
    /// finite, or another branch already carries a sink with this name.
    pub fn set_sink(&mut self, branch: BranchId, name: &str, c_load: f64) {
        assert!(branch.0 < self.branches.len(), "branch does not exist");
        assert!(
            c_load >= 0.0 && c_load.is_finite(),
            "sink load capacitance must be non-negative and finite"
        );
        assert!(
            !self
                .branches
                .iter()
                .enumerate()
                .any(|(i, b)| i != branch.0 && b.sink.as_ref().is_some_and(|s| s.name == name)),
            "sink name {name} is already used in this tree"
        );
        self.branches[branch.0].sink = Some(Sink {
            name: name.to_string(),
            c_load,
        });
    }

    /// Number of branches.
    pub fn num_branches(&self) -> usize {
        self.branches.len()
    }

    /// The branch with the given id.
    pub fn branch(&self, id: BranchId) -> &TreeBranch {
        &self.branches[id.0]
    }

    /// Iterates the branches in tree order (parents before children).
    pub fn branches(&self) -> impl Iterator<Item = (BranchId, &TreeBranch)> {
        self.branches
            .iter()
            .enumerate()
            .map(|(i, b)| (BranchId(i), b))
    }

    /// Iterates the declared sinks in branch order.
    pub fn sinks(&self) -> impl Iterator<Item = (BranchId, &Sink)> {
        self.branches
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.sink.as_ref().map(|s| (BranchId(i), s)))
    }

    /// Number of declared sinks.
    pub fn num_sinks(&self) -> usize {
        self.sinks().count()
    }

    /// The ids of `branch`'s children.
    pub fn children(&self, branch: BranchId) -> Vec<BranchId> {
        self.branches
            .iter()
            .enumerate()
            .filter_map(|(i, b)| (b.parent == Some(branch)).then_some(BranchId(i)))
            .collect()
    }

    /// Total capacitance of the net: every branch's shunt capacitance plus
    /// every sink load.
    pub fn total_capacitance(&self) -> f64 {
        self.branches
            .iter()
            .map(|b| b.line.capacitance() + b.sink.as_ref().map_or(0.0, |s| s.c_load))
            .sum()
    }

    /// Sum of the sink load capacitances (the external fan-out beyond the
    /// wire itself).
    pub fn sink_capacitance(&self) -> f64 {
        self.sinks().map(|(_, s)| s.c_load).sum()
    }

    /// Sum of the per-branch times of flight — a conservative propagation
    /// estimate for choosing simulation windows.
    pub fn total_time_of_flight(&self) -> f64 {
        self.branches.iter().map(|b| b.line.time_of_flight()).sum()
    }

    /// When the tree is exactly the paper's topology — one branch, one sink —
    /// returns the line and sink load, letting single-line fast paths apply.
    pub fn as_single_line(&self) -> Option<(&RlcLine, f64)> {
        match self.branches.as_slice() {
            [only] => only.sink.as_ref().map(|sink| (&only.line, sink.c_load)),
            _ => None,
        }
    }

    /// Synthesizes the tree into `ckt` as segmented ladders (one
    /// [`add_rlc_ladder`] pi ladder of `segments_per_branch` sections per
    /// branch, branch `k` prefixed `{name_prefix}_b{k}`), starting at `near`.
    /// Created nodes are initialized to `v_initial`. Returns the declared
    /// sinks with their circuit nodes, in branch order.
    ///
    /// # Panics
    /// Panics if the tree is empty or `segments_per_branch == 0`.
    pub fn add_to_circuit(
        &self,
        ckt: &mut Circuit,
        near: NodeId,
        segments_per_branch: usize,
        v_initial: f64,
        name_prefix: &str,
    ) -> Vec<SinkNode> {
        assert!(!self.branches.is_empty(), "cannot synthesize an empty tree");
        let mut far_nodes: Vec<NodeId> = Vec::with_capacity(self.branches.len());
        let mut sink_nodes = Vec::new();
        for (k, branch) in self.branches.iter().enumerate() {
            let start = match branch.parent {
                Some(p) => far_nodes[p.0],
                None => near,
            };
            let c_load = branch.sink.as_ref().map_or(0.0, |s| s.c_load);
            let far = add_rlc_ladder(
                ckt,
                start,
                branch.line.resistance(),
                branch.line.inductance(),
                branch.line.capacitance(),
                segments_per_branch,
                c_load,
                v_initial,
                &format!("{name_prefix}_b{k}"),
            );
            if let Some(sink) = &branch.sink {
                sink_nodes.push(SinkNode {
                    name: sink.name.clone(),
                    node: far,
                });
            }
            far_nodes.push(far);
        }
        sink_nodes
    }
}

/// A synthesized sink: the sink name and the circuit node realizing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkNode {
    /// The sink (pin) name.
    pub name: String,
    /// The circuit node at the sink.
    pub node: NodeId,
}

/// Two parallel RLC lines — a victim and an aggressor — coupled along their
/// length by a total coupling capacitance and a total mutual inductance.
///
/// Parasitics are totals over the coupled run (like [`RlcLine`]); synthesis
/// distributes them uniformly over the ladder segments. The coupling
/// coefficient `M / sqrt(Lv * La)` must stay below 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoupledBus {
    victim: RlcLine,
    aggressor: RlcLine,
    coupling_capacitance: f64,
    mutual_inductance: f64,
    victim_load: f64,
    aggressor_load: f64,
}

impl CoupledBus {
    /// Creates a coupled bus from the two lines, the total line-to-line
    /// coupling capacitance (F), the total mutual inductance (H), and the
    /// far-end load capacitances of both lines.
    ///
    /// # Panics
    /// Panics if the coupling capacitance or either load is negative or not
    /// finite, or if the mutual inductance implies a coupling coefficient of
    /// 1 or more.
    pub fn new(
        victim: RlcLine,
        aggressor: RlcLine,
        coupling_capacitance: f64,
        mutual_inductance: f64,
        victim_load: f64,
        aggressor_load: f64,
    ) -> Self {
        assert!(
            coupling_capacitance >= 0.0 && coupling_capacitance.is_finite(),
            "coupling capacitance must be non-negative and finite"
        );
        assert!(
            mutual_inductance.is_finite()
                && mutual_inductance * mutual_inductance
                    < victim.inductance() * aggressor.inductance(),
            "mutual inductance must keep the coupling coefficient below 1"
        );
        assert!(
            victim_load >= 0.0 && victim_load.is_finite(),
            "victim load capacitance must be non-negative and finite"
        );
        assert!(
            aggressor_load >= 0.0 && aggressor_load.is_finite(),
            "aggressor load capacitance must be non-negative and finite"
        );
        CoupledBus {
            victim,
            aggressor,
            coupling_capacitance,
            mutual_inductance,
            victim_load,
            aggressor_load,
        }
    }

    /// A symmetric bus: both wires are copies of `line`, both terminated by
    /// `c_load`.
    pub fn symmetric(
        line: RlcLine,
        coupling_capacitance: f64,
        mutual_inductance: f64,
        c_load: f64,
    ) -> Self {
        CoupledBus::new(
            line,
            line,
            coupling_capacitance,
            mutual_inductance,
            c_load,
            c_load,
        )
    }

    /// The victim line.
    pub fn victim(&self) -> &RlcLine {
        &self.victim
    }

    /// The aggressor line.
    pub fn aggressor(&self) -> &RlcLine {
        &self.aggressor
    }

    /// Total line-to-line coupling capacitance (F).
    pub fn coupling_capacitance(&self) -> f64 {
        self.coupling_capacitance
    }

    /// Total mutual inductance (H).
    pub fn mutual_inductance(&self) -> f64 {
        self.mutual_inductance
    }

    /// Victim far-end load capacitance (F).
    pub fn victim_load(&self) -> f64 {
        self.victim_load
    }

    /// Aggressor far-end load capacitance (F).
    pub fn aggressor_load(&self) -> f64 {
        self.aggressor_load
    }

    /// Inductive coupling coefficient `k = M / sqrt(Lv * La)`.
    pub fn coupling_coefficient(&self) -> f64 {
        self.mutual_inductance / (self.victim.inductance() * self.aggressor.inductance()).sqrt()
    }

    /// Synthesizes the coupled bus into `ckt`: two interleaved pi ladders of
    /// `segments` sections (the same discretization as [`add_rlc_ladder`]),
    /// the coupling capacitance distributed as half-sections at both ends and
    /// full sections between interior node pairs, and one mutual inductance
    /// per segment pair. Victim nodes start at `v_initial_victim`, aggressor
    /// nodes at `v_initial_aggressor`. Returns the victim and aggressor
    /// far-end nodes.
    ///
    /// # Panics
    /// Panics if `segments == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn add_to_circuit(
        &self,
        ckt: &mut Circuit,
        victim_near: NodeId,
        aggressor_near: NodeId,
        segments: usize,
        v_initial_victim: f64,
        v_initial_aggressor: f64,
        name_prefix: &str,
    ) -> (NodeId, NodeId) {
        assert!(segments > 0, "need at least one bus segment");
        let n = segments as f64;
        let ccs = self.coupling_capacitance / n;
        let ms = self.mutual_inductance / n;

        let add_coupling = |ckt: &mut Circuit, k: usize, a: NodeId, b: NodeId, farads: f64| {
            if farads > 0.0 {
                ckt.add_capacitor(&format!("{name_prefix}_Cc{k}"), a, b, farads);
            }
        };

        // Near-end half coupling cap between the two driving points.
        add_coupling(ckt, 0, victim_near, aggressor_near, 0.5 * ccs);

        let mut prev = [victim_near, aggressor_near];
        let wires = [
            ("v", &self.victim, v_initial_victim),
            ("a", &self.aggressor, v_initial_aggressor),
        ];
        // Near-end half shunt caps of both wires.
        for (w, (tag, line, _)) in wires.iter().enumerate() {
            ckt.add_capacitor(
                &format!("{name_prefix}_{tag}C0"),
                prev[w],
                Circuit::GROUND,
                0.5 * line.capacitance() / n,
            );
        }
        for k in 0..segments {
            let mut next = prev;
            for (w, (tag, line, v_init)) in wires.iter().enumerate() {
                let rs = line.resistance() / n;
                let ls = line.inductance() / n;
                let cs = line.capacitance() / n;
                let mid = ckt.node(&format!("{name_prefix}_{tag}m{k}"));
                let far = ckt.node(&format!("{name_prefix}_{tag}n{k}"));
                ckt.add_resistor(&format!("{name_prefix}_{tag}R{k}"), prev[w], mid, rs);
                ckt.add_inductor(&format!("{name_prefix}_{tag}L{k}"), mid, far, ls);
                // Interior nodes carry a full section cap, the far end a half.
                let shunt = if k + 1 == segments { 0.5 * cs } else { cs };
                ckt.add_capacitor(
                    &format!("{name_prefix}_{tag}C{}", k + 1),
                    far,
                    Circuit::GROUND,
                    shunt,
                );
                ckt.set_initial_condition(mid, *v_init);
                ckt.set_initial_condition(far, *v_init);
                next[w] = far;
            }
            if ms != 0.0 {
                ckt.add_mutual_inductance(
                    &format!("{name_prefix}_K{k}"),
                    &format!("{name_prefix}_vL{k}"),
                    &format!("{name_prefix}_aL{k}"),
                    ms,
                );
            }
            // Coupling cap between the section's far nodes: full for interior
            // pairs, half at the bus far end.
            let cc = if k + 1 == segments { 0.5 * ccs } else { ccs };
            add_coupling(ckt, k + 1, next[0], next[1], cc);
            prev = next;
        }
        if self.victim_load > 0.0 {
            ckt.add_capacitor(
                &format!("{name_prefix}_vCL"),
                prev[0],
                Circuit::GROUND,
                self.victim_load,
            );
        }
        if self.aggressor_load > 0.0 {
            ckt.add_capacitor(
                &format!("{name_prefix}_aCL"),
                prev[1],
                Circuit::GROUND,
                self.aggressor_load,
            );
        }
        (prev[0], prev[1])
    }
}

impl std::fmt::Display for CoupledBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "coupled bus: victim [{}], aggressor [{}], Cc = {:.3} pF, M = {:.3} nH (k = {:.2})",
            self.victim,
            self.aggressor,
            self.coupling_capacitance * 1e12,
            self.mutual_inductance * 1e9,
            self.coupling_coefficient()
        )
    }
}

/// The net-topology IR: every load shape the suite's layers understand.
///
/// The analysis layers consume the variants directly ([`RlcTree`] for
/// moment-based reduction and per-sink far ends, [`CoupledBus`] for
/// crosstalk stages); the enum is the hand-off format for extraction
/// front-ends that produce "some net" without knowing which analysis will
/// run on it.
#[derive(Debug, Clone, PartialEq)]
pub enum NetTopology {
    /// A tree of RLC branches with named sinks (one branch = the paper's
    /// point-to-point line).
    Tree(RlcTree),
    /// Two coupled parallel lines (victim + aggressor).
    CoupledBus(CoupledBus),
}

impl NetTopology {
    /// The single-line topology of the paper: one branch, one `"far"` sink.
    pub fn single_line(line: RlcLine, c_load: f64) -> Self {
        NetTopology::Tree(RlcTree::single_line(line, c_load))
    }

    /// Total capacitance of the net (wires plus sink loads; for a bus, both
    /// wires, both loads and the coupling capacitance).
    pub fn total_capacitance(&self) -> f64 {
        match self {
            NetTopology::Tree(tree) => tree.total_capacitance(),
            NetTopology::CoupledBus(bus) => {
                bus.victim().capacitance()
                    + bus.aggressor().capacitance()
                    + bus.coupling_capacitance()
                    + bus.victim_load()
                    + bus.aggressor_load()
            }
        }
    }

    /// Number of sinks (tree sinks; a bus has its two far ends).
    pub fn num_sinks(&self) -> usize {
        match self {
            NetTopology::Tree(tree) => tree.num_sinks(),
            NetTopology::CoupledBus(_) => 2,
        }
    }
}

impl From<RlcTree> for NetTopology {
    fn from(tree: RlcTree) -> Self {
        NetTopology::Tree(tree)
    }
}

impl From<CoupledBus> for NetTopology {
    fn from(bus: CoupledBus) -> Self {
        NetTopology::CoupledBus(bus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_numeric::units::{ff, mm, nh, pf};
    use rlc_spice::SourceWaveform;

    fn paper_line() -> RlcLine {
        RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0))
    }

    fn stub() -> RlcLine {
        RlcLine::new(20.0, nh(1.0), pf(0.3), mm(1.0))
    }

    #[test]
    fn single_line_tree_is_recognized() {
        let tree = RlcTree::single_line(paper_line(), ff(10.0));
        assert_eq!(tree.num_branches(), 1);
        assert_eq!(tree.num_sinks(), 1);
        let (line, c_load) = tree.as_single_line().unwrap();
        assert_eq!(line, &paper_line());
        assert!((c_load - 10e-15).abs() < 1e-24);
        assert!((tree.total_capacitance() - (paper_line().capacitance() + 10e-15)).abs() < 1e-18);
    }

    #[test]
    fn branching_tree_tracks_structure() {
        let mut tree = RlcTree::new();
        let trunk = tree.add_branch(None, paper_line());
        let l = tree.add_branch(Some(trunk), stub());
        let r = tree.add_branch(Some(trunk), stub());
        tree.set_sink(l, "rx0", ff(15.0));
        tree.set_sink(r, "rx1", ff(25.0));
        assert!(tree.as_single_line().is_none());
        assert_eq!(tree.children(trunk), vec![l, r]);
        assert!(tree.children(l).is_empty());
        assert_eq!(tree.branch(l).parent(), Some(trunk));
        assert_eq!(tree.num_sinks(), 2);
        assert!((tree.sink_capacitance() - 40e-15).abs() < 1e-24);
        assert!(tree.total_time_of_flight() > paper_line().time_of_flight());
        let names: Vec<&str> = tree.sinks().map(|(_, s)| s.name.as_str()).collect();
        assert_eq!(names, ["rx0", "rx1"]);
    }

    #[test]
    #[should_panic(expected = "already used")]
    fn duplicate_sink_names_rejected() {
        let mut tree = RlcTree::new();
        let a = tree.add_branch(None, paper_line());
        let b = tree.add_branch(Some(a), stub());
        tree.set_sink(a, "rx", ff(1.0));
        tree.set_sink(b, "rx", ff(1.0));
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn foreign_parent_rejected() {
        let mut tree = RlcTree::new();
        tree.add_branch(Some(BranchId(3)), paper_line());
    }

    #[test]
    fn tree_synthesis_creates_all_sinks() {
        let mut tree = RlcTree::new();
        let trunk = tree.add_branch(None, paper_line());
        let l = tree.add_branch(Some(trunk), stub());
        let r = tree.add_branch(Some(trunk), stub());
        tree.set_sink(l, "rx0", ff(15.0));
        tree.set_sink(r, "rx1", ff(25.0));

        let mut ckt = Circuit::new();
        let near = ckt.node("out");
        ckt.add_vsource("V1", near, Circuit::GROUND, SourceWaveform::dc(0.0));
        let sinks = tree.add_to_circuit(&mut ckt, near, 6, 0.0, "net");
        assert_eq!(sinks.len(), 2);
        assert_eq!(sinks[0].name, "rx0");
        assert_eq!(sinks[1].name, "rx1");
        assert_ne!(sinks[0].node, sinks[1].node);
        assert!(ckt.validate().is_ok());
    }

    #[test]
    fn bus_synthesis_produces_valid_coupled_circuit() {
        let bus = CoupledBus::symmetric(paper_line(), pf(0.4), nh(1.5), ff(10.0));
        assert!(bus.coupling_coefficient() > 0.0 && bus.coupling_coefficient() < 1.0);
        let mut ckt = Circuit::new();
        let v = ckt.node("v_in");
        let a = ckt.node("a_in");
        ckt.add_vsource("VV", v, Circuit::GROUND, SourceWaveform::dc(0.0));
        ckt.add_vsource("VA", a, Circuit::GROUND, SourceWaveform::dc(0.0));
        let (v_far, a_far) = bus.add_to_circuit(&mut ckt, v, a, 8, 0.0, 0.0, "bus");
        assert_ne!(v_far, a_far);
        assert!(ckt.validate().is_ok());
        assert!(bus.to_string().contains("coupled bus"));
    }

    #[test]
    fn zero_coupling_bus_synthesis_is_valid() {
        let bus = CoupledBus::symmetric(paper_line(), 0.0, 0.0, ff(10.0));
        let mut ckt = Circuit::new();
        let v = ckt.node("v_in");
        let a = ckt.node("a_in");
        ckt.add_vsource("VV", v, Circuit::GROUND, SourceWaveform::dc(0.0));
        ckt.add_vsource("VA", a, Circuit::GROUND, SourceWaveform::dc(0.0));
        let _ = bus.add_to_circuit(&mut ckt, v, a, 8, 0.0, 0.0, "bus");
        assert!(ckt.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "coupling coefficient below 1")]
    fn over_coupled_bus_rejected() {
        let line = paper_line();
        let _ = CoupledBus::symmetric(line, 0.0, line.inductance(), 0.0);
    }

    #[test]
    fn net_topology_wraps_both_variants() {
        let net = NetTopology::single_line(paper_line(), ff(10.0));
        assert_eq!(net.num_sinks(), 1);
        assert!(net.total_capacitance() > pf(1.0));

        let bus: NetTopology =
            CoupledBus::symmetric(paper_line(), pf(0.4), nh(1.0), ff(10.0)).into();
        assert_eq!(bus.num_sinks(), 2);
        assert!(bus.total_capacitance() > 2.0 * pf(1.1));

        let tree: NetTopology = RlcTree::single_line(paper_line(), 0.0).into();
        assert!(matches!(tree, NetTopology::Tree(_)));
    }
}
