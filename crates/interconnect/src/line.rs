//! Extracted RLC transmission-line representation and derived electrical
//! properties (characteristic impedance, time of flight, damping), plus the
//! ladder segmentation handed to the circuit simulator.

use rlc_spice::circuit::{Circuit, NodeId};

use crate::topology::RlcTree;

/// A uniform on-chip RLC line described by its **total** series resistance,
/// series inductance and shunt capacitance.
///
/// ```
/// use rlc_interconnect::RlcLine;
/// use rlc_numeric::units::{mm, nh, pf};
///
/// // The paper's 5 mm / 1.6 um line.
/// let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
/// assert!((line.characteristic_impedance() - 68.4).abs() < 1.0);
/// assert!((line.time_of_flight() * 1e12 - 75.2).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlcLine {
    resistance: f64,
    inductance: f64,
    capacitance: f64,
    length: f64,
}

impl RlcLine {
    /// Creates a line from total parasitics and physical length (SI units).
    ///
    /// # Panics
    /// Panics if any parasitic or the length is not positive.
    pub fn new(resistance: f64, inductance: f64, capacitance: f64, length: f64) -> Self {
        assert!(resistance > 0.0, "line resistance must be positive");
        assert!(inductance > 0.0, "line inductance must be positive");
        assert!(capacitance > 0.0, "line capacitance must be positive");
        assert!(length > 0.0, "line length must be positive");
        RlcLine {
            resistance,
            inductance,
            capacitance,
            length,
        }
    }

    /// Total series resistance (ohms).
    pub fn resistance(&self) -> f64 {
        self.resistance
    }

    /// Total series inductance (henries).
    pub fn inductance(&self) -> f64 {
        self.inductance
    }

    /// Total shunt capacitance (farads).
    pub fn capacitance(&self) -> f64 {
        self.capacitance
    }

    /// Physical length (metres).
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Resistance per unit length (ohm/m).
    pub fn r_per_length(&self) -> f64 {
        self.resistance / self.length
    }

    /// Inductance per unit length (H/m).
    pub fn l_per_length(&self) -> f64 {
        self.inductance / self.length
    }

    /// Capacitance per unit length (F/m).
    pub fn c_per_length(&self) -> f64 {
        self.capacitance / self.length
    }

    /// Lossless characteristic impedance `Z0 = sqrt(L/C)` (ohms).
    pub fn characteristic_impedance(&self) -> f64 {
        (self.inductance / self.capacitance).sqrt()
    }

    /// Time of flight `tf = sqrt(L_total * C_total)` (seconds) — the paper's
    /// `tf` in Equations 8 and 9.
    pub fn time_of_flight(&self) -> f64 {
        (self.inductance * self.capacitance).sqrt()
    }

    /// Attenuation factor `R_total / (2 Z0)`; lines with values well above 1
    /// behave resistively (RC-like) regardless of the driver.
    pub fn attenuation(&self) -> f64 {
        self.resistance / (2.0 * self.characteristic_impedance())
    }

    /// Lumped RC (Elmore-style) time constant `R_total * C_total / 2`,
    /// useful for choosing simulation windows.
    pub fn rc_time_constant(&self) -> f64 {
        0.5 * self.resistance * self.capacitance
    }

    /// Whether the unloaded line is underdamped as a lumped series RLC
    /// (`R < 2 Z0`), a quick indicator of potential inductive behaviour.
    pub fn is_underdamped(&self) -> bool {
        self.attenuation() < 1.0
    }

    /// A per-mm scaled copy of this line with a new length: keeps the
    /// per-unit-length parasitics, changes the total length.
    ///
    /// # Panics
    /// Panics if `new_length <= 0`.
    pub fn with_length(&self, new_length: f64) -> RlcLine {
        assert!(new_length > 0.0);
        let scale = new_length / self.length;
        RlcLine {
            resistance: self.resistance * scale,
            inductance: self.inductance * scale,
            capacitance: self.capacitance * scale,
            length: new_length,
        }
    }

    /// Recommended number of ladder segments for transient simulation: at
    /// least 10 segments and at least 4 segments per `min_feature_time`
    /// of propagation delay, capped at 120. The rule keeps the per-segment
    /// delay well below both the signal transition time and the time of
    /// flight so reflections are resolved.
    pub fn recommended_segments(&self, min_feature_time: f64) -> usize {
        assert!(min_feature_time > 0.0);
        let tof = self.time_of_flight();
        let by_feature = (4.0 * tof / min_feature_time).ceil() as usize;
        by_feature.clamp(10, 120)
    }

    /// The equivalent one-branch [`RlcTree`] (single sink `"far"` carrying
    /// `c_load`) — the point-to-point line as a degenerate net topology.
    pub fn to_tree(&self, c_load: f64) -> RlcTree {
        RlcTree::single_line(*self, c_load)
    }

    /// Appends this line as a segmented ladder to an existing circuit;
    /// returns the far-end node. A thin wrapper over the one-branch
    /// [`RlcTree`] synthesis, so every topology flows through the same
    /// circuit-construction path.
    #[allow(clippy::too_many_arguments)]
    pub fn add_to_circuit(
        &self,
        ckt: &mut Circuit,
        near: NodeId,
        segments: usize,
        c_load: f64,
        v_initial: f64,
        name_prefix: &str,
    ) -> NodeId {
        self.to_tree(c_load)
            .add_to_circuit(ckt, near, segments, v_initial, name_prefix)
            .pop()
            .expect("a single-line tree always has its far sink")
            .node
    }
}

impl std::fmt::Display for RlcLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "R={:.2} ohm, L={:.3} nH, C={:.3} pF ({:.2} mm)",
            self.resistance,
            self.inductance * 1e9,
            self.capacitance * 1e12,
            self.length * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_numeric::approx_eq;
    use rlc_numeric::units::{mm, nh, pf, ps};

    fn paper_5mm_line() -> RlcLine {
        RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0))
    }

    #[test]
    fn derived_quantities_match_hand_calculation() {
        let line = paper_5mm_line();
        assert!(approx_eq(
            line.characteristic_impedance(),
            (5.14e-9f64 / 1.10e-12).sqrt(),
            1e-12
        ));
        assert!(approx_eq(
            line.time_of_flight(),
            (5.14e-9f64 * 1.10e-12).sqrt(),
            1e-12
        ));
        assert!(approx_eq(line.r_per_length(), 72.44 / 5.0e-3, 1e-12));
        assert!(line.is_underdamped());
        assert!(line.attenuation() < 0.6);
        assert!(line.rc_time_constant() > ps(30.0));
    }

    #[test]
    fn with_length_scales_parasitics_linearly() {
        let line = paper_5mm_line().with_length(mm(10.0));
        assert!(approx_eq(line.resistance(), 2.0 * 72.44, 1e-12));
        assert!(approx_eq(line.inductance(), 2.0 * 5.14e-9, 1e-12));
        assert!(approx_eq(line.capacitance(), 2.0 * 1.10e-12, 1e-12));
        // Per-unit-length values unchanged.
        assert!(approx_eq(
            line.c_per_length(),
            paper_5mm_line().c_per_length(),
            1e-12
        ));
    }

    #[test]
    fn recommended_segments_has_sane_bounds() {
        let line = paper_5mm_line();
        let n = line.recommended_segments(ps(50.0));
        assert!((10..=120).contains(&n));
        // Shorter feature times demand more segments.
        assert!(line.recommended_segments(ps(10.0)) >= n);
        // A very short line hits the lower bound.
        let short = line.with_length(mm(0.2));
        assert_eq!(short.recommended_segments(ps(100.0)), 10);
    }

    #[test]
    fn add_to_circuit_creates_far_end() {
        let mut ckt = Circuit::new();
        let near = ckt.node("out");
        ckt.add_vsource(
            "V1",
            near,
            Circuit::GROUND,
            rlc_spice::SourceWaveform::dc(0.0),
        );
        let far = paper_5mm_line().add_to_circuit(&mut ckt, near, 8, 10e-15, 0.0, "ln");
        assert_ne!(near, far);
        assert!(ckt.validate().is_ok());
    }

    #[test]
    fn display_is_readable() {
        let s = paper_5mm_line().to_string();
        assert!(s.contains("72.44"));
        assert!(s.contains("5.140 nH"));
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn zero_capacitance_rejected() {
        let _ = RlcLine::new(1.0, 1e-9, 0.0, 1e-3);
    }
}
