//! The experimental cases published in the paper, with their extracted
//! parasitics and (where the paper reports them) the HSPICE / model results.
//!
//! These values are transcribed from Table 1 and the figure captions of
//! Agarwal, Sylvester, Blaauw, "An Effective Capacitance Based Driver Output
//! Model for On-Chip RLC Interconnects", DAC 2003. They serve two purposes:
//!
//! 1. calibration targets for [`crate::extraction::EmpiricalExtractor`];
//! 2. the case list that the `rlc-bench` experiment binaries re-run, so
//!    EXPERIMENTS.md can put paper-reported and reproduced numbers side by
//!    side.

/// Parasitics of one published line geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedParasitics {
    /// Human-readable label (e.g. `"table1: 5mm/1.6um"`).
    pub label: &'static str,
    /// Line length in millimetres.
    pub length_mm: f64,
    /// Line width in micrometres.
    pub width_um: f64,
    /// Total resistance in ohms.
    pub r_ohms: f64,
    /// Total inductance in nanohenries.
    pub l_nh: f64,
    /// Total capacitance in picofarads.
    pub c_pf: f64,
}

/// One row of the paper's Table 1 (a case with significant inductive
/// effects): the testbench configuration, published parasitics, and the
/// published HSPICE / two-ramp / one-ramp results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Published parasitics and geometry.
    pub parasitics: PublishedParasitics,
    /// Driver size (multiple of the minimum inverter, e.g. 75.0 for "75x").
    pub driver_size: f64,
    /// Input transition time in picoseconds.
    pub input_slew_ps: f64,
    /// HSPICE 50 % delay at the driver output (ps).
    pub hspice_delay_ps: f64,
    /// Two-ramp model delay (ps).
    pub two_ramp_delay_ps: f64,
    /// One-ramp model delay (ps).
    pub one_ramp_delay_ps: f64,
    /// HSPICE slew at the driver output (ps).
    pub hspice_slew_ps: f64,
    /// Two-ramp model slew (ps).
    pub two_ramp_slew_ps: f64,
    /// One-ramp model slew (ps).
    pub one_ramp_slew_ps: f64,
}

impl Table1Row {
    /// Signed relative delay error of the paper's two-ramp model vs. HSPICE.
    pub fn published_two_ramp_delay_error(&self) -> f64 {
        (self.two_ramp_delay_ps - self.hspice_delay_ps) / self.hspice_delay_ps
    }

    /// Signed relative slew error of the paper's two-ramp model vs. HSPICE.
    pub fn published_two_ramp_slew_error(&self) -> f64 {
        (self.two_ramp_slew_ps - self.hspice_slew_ps) / self.hspice_slew_ps
    }

    /// Signed relative delay error of the paper's one-ramp model vs. HSPICE.
    pub fn published_one_ramp_delay_error(&self) -> f64 {
        (self.one_ramp_delay_ps - self.hspice_delay_ps) / self.hspice_delay_ps
    }

    /// Signed relative slew error of the paper's one-ramp model vs. HSPICE.
    pub fn published_one_ramp_slew_error(&self) -> f64 {
        (self.one_ramp_slew_ps - self.hspice_slew_ps) / self.hspice_slew_ps
    }
}

/// A figure case: geometry, parasitics, driver and input slew.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FigureCase {
    /// Published parasitics and geometry.
    pub parasitics: PublishedParasitics,
    /// Driver size (multiple of the minimum inverter).
    pub driver_size: f64,
    /// Input transition time in picoseconds.
    pub input_slew_ps: f64,
}

macro_rules! parasitics {
    ($label:expr, $len:expr, $wid:expr, $r:expr, $l:expr, $c:expr) => {
        PublishedParasitics {
            label: $label,
            length_mm: $len,
            width_um: $wid,
            r_ohms: $r,
            l_nh: $l,
            c_pf: $c,
        }
    };
}

/// Figure 1: driver output waveform of a 5 mm RLC line driven by a 75X
/// inverter (the paper does not state the input slew for this figure; 100 ps
/// matches the waveform's time scale and the companion Figure 5 case).
pub fn figure1_case() -> FigureCase {
    FigureCase {
        parasitics: parasitics!("fig1: 5mm/1.6um", 5.0, 1.6, 72.44, 5.14, 1.10),
        driver_size: 75.0,
        input_slew_ps: 100.0,
    }
}

/// Figure 3: single-Ceff approximations for a 7 mm / 1.6 µm line, 75X driver,
/// 100 ps input slew.
pub fn figure3_case() -> FigureCase {
    FigureCase {
        parasitics: parasitics!("fig3: 7mm/1.6um", 7.0, 1.6, 101.3, 7.1, 1.54),
        driver_size: 75.0,
        input_slew_ps: 100.0,
    }
}

/// Figure 4 uses the same case as Figure 3 (the two-ramp construction is
/// illustrated on the 7 mm line).
pub fn figure4_case() -> FigureCase {
    figure3_case()
}

/// Figure 5, left: 3 mm / 1.2 µm line, 75X driver, 75 ps input slew.
pub fn figure5_left_case() -> FigureCase {
    FigureCase {
        parasitics: parasitics!("fig5L: 3mm/1.2um", 3.0, 1.2, 56.3, 3.2, 0.597),
        driver_size: 75.0,
        input_slew_ps: 75.0,
    }
}

/// Figure 5, right: 5 mm / 1.6 µm line, 100X driver, 100 ps input slew.
pub fn figure5_right_case() -> FigureCase {
    FigureCase {
        parasitics: parasitics!("fig5R: 5mm/1.6um", 5.0, 1.6, 72.4, 5.1, 1.1),
        driver_size: 100.0,
        input_slew_ps: 100.0,
    }
}

/// Figure 6, left ("1 ramp model" case, inductance not significant):
/// 4 mm / 1.6 µm line, 25X driver, 100 ps input slew.
pub fn figure6_left_case() -> FigureCase {
    FigureCase {
        parasitics: parasitics!("fig6L: 4mm/1.6um", 4.0, 1.6, 58.0, 4.13, 0.884),
        driver_size: 25.0,
        input_slew_ps: 100.0,
    }
}

/// Figure 6, right (near/far-end comparison): 4 mm / 0.8 µm line, 75X driver,
/// 50 ps input slew.
pub fn figure6_right_case() -> FigureCase {
    FigureCase {
        parasitics: parasitics!("fig6R: 4mm/0.8um", 4.0, 0.8, 108.9, 4.42, 0.704),
        driver_size: 75.0,
        input_slew_ps: 50.0,
    }
}

/// All 15 rows of Table 1.
#[allow(clippy::type_complexity)] // one literal tuple row per published table row
pub fn table1_rows() -> Vec<Table1Row> {
    // (label, len, wid, R, L, C, size, slew,
    //  hspice_d, 2r_d, 1r_d, hspice_s, 2r_s, 1r_s)
    let raw: [(
        &'static str,
        f64,
        f64,
        f64,
        f64,
        f64,
        f64,
        f64,
        f64,
        f64,
        f64,
        f64,
        f64,
        f64,
    ); 15] = [
        (
            "table1: 3mm/0.8um",
            3.0,
            0.8,
            81.8,
            3.3,
            0.52,
            75.0,
            50.0,
            25.01,
            24.2,
            41.3,
            124.1,
            129.9,
            61.5,
        ),
        (
            "table1: 3mm/1.2um",
            3.0,
            1.2,
            56.3,
            3.2,
            0.59,
            75.0,
            50.0,
            26.44,
            25.6,
            56.3,
            128.9,
            141.1,
            91.8,
        ),
        (
            "table1: 3mm/1.6um",
            3.0,
            1.6,
            43.5,
            3.1,
            0.66,
            75.0,
            50.0,
            32.15,
            29.9,
            66.1,
            135.4,
            148.8,
            112.1,
        ),
        (
            "table1: 4mm/0.8um",
            4.0,
            0.8,
            108.9,
            4.4,
            0.70,
            75.0,
            50.0,
            25.02,
            25.7,
            39.1,
            157.3,
            163.1,
            57.3,
        ),
        (
            "table1: 4mm/1.2um",
            4.0,
            1.2,
            75.0,
            4.2,
            0.80,
            75.0,
            50.0,
            26.51,
            27.7,
            59.1,
            164.4,
            179.0,
            97.6,
        ),
        (
            "table1: 4mm/1.6um",
            4.0,
            1.6,
            58.0,
            4.1,
            0.88,
            75.0,
            50.0,
            32.69,
            30.2,
            74.9,
            175.0,
            196.0,
            130.5,
        ),
        (
            "table1: 5mm/1.2um",
            5.0,
            1.2,
            93.7,
            5.3,
            1.00,
            100.0,
            100.0,
            36.43,
            35.6,
            46.4,
            192.8,
            173.7,
            60.0,
        ),
        (
            "table1: 5mm/1.6um",
            5.0,
            1.6,
            72.4,
            5.1,
            1.11,
            100.0,
            100.0,
            39.56,
            37.7,
            53.0,
            200.3,
            204.0,
            71.8,
        ),
        (
            "table1: 5mm/2.0um",
            5.0,
            2.0,
            59.7,
            5.0,
            1.22,
            100.0,
            100.0,
            42.53,
            39.5,
            63.1,
            207.6,
            226.3,
            90.9,
        ),
        (
            "table1: 5mm/2.5um",
            5.0,
            2.5,
            49.5,
            4.8,
            1.31,
            100.0,
            100.0,
            45.26,
            42.4,
            78.2,
            212.2,
            231.8,
            121.1,
        ),
        (
            "table1: 6mm/1.2um",
            6.0,
            1.2,
            112.4,
            6.3,
            1.19,
            100.0,
            100.0,
            36.44,
            37.0,
            46.5,
            222.7,
            203.7,
            60.1,
        ),
        (
            "table1: 6mm/1.6um",
            6.0,
            1.6,
            86.9,
            6.2,
            1.33,
            100.0,
            100.0,
            39.58,
            39.3,
            52.4,
            232.0,
            235.5,
            70.7,
        ),
        (
            "table1: 6mm/2.0um",
            6.0,
            2.0,
            71.6,
            6.0,
            1.46,
            100.0,
            100.0,
            42.55,
            41.4,
            60.8,
            240.9,
            254.7,
            86.4,
        ),
        (
            "table1: 6mm/2.5um",
            6.0,
            2.5,
            59.3,
            5.8,
            1.58,
            100.0,
            100.0,
            45.29,
            45.9,
            75.1,
            246.3,
            276.9,
            114.2,
        ),
        (
            "table1: 6mm/3.0um",
            6.0,
            3.0,
            51.2,
            5.6,
            1.80,
            100.0,
            100.0,
            49.41,
            47.8,
            101.4,
            261.7,
            299.1,
            168.4,
        ),
    ];
    raw.iter()
        .map(
            |&(label, len, wid, r, l, c, size, slew, hd, d2, d1, hs, s2, s1)| Table1Row {
                parasitics: parasitics!(label, len, wid, r, l, c),
                driver_size: size,
                input_slew_ps: slew,
                hspice_delay_ps: hd,
                two_ramp_delay_ps: d2,
                one_ramp_delay_ps: d1,
                hspice_slew_ps: hs,
                two_ramp_slew_ps: s2,
                one_ramp_slew_ps: s1,
            },
        )
        .collect()
}

/// Every published parasitic set (Table 1 rows plus figure cases), used to
/// calibrate and regression-test the empirical extractor.
pub fn all_published_parasitics() -> Vec<PublishedParasitics> {
    let mut out: Vec<PublishedParasitics> = table1_rows().iter().map(|r| r.parasitics).collect();
    out.extend([
        figure1_case().parasitics,
        figure3_case().parasitics,
        figure5_left_case().parasitics,
        figure5_right_case().parasitics,
        figure6_left_case().parasitics,
        figure6_right_case().parasitics,
    ]);
    out
}

/// The paper's Figure 7 error statistics over its 165 inductive cases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedSweepStats {
    /// Number of inductive cases.
    pub cases: usize,
    /// Average delay error (fraction).
    pub avg_delay_error: f64,
    /// Average slew error (fraction).
    pub avg_slew_error: f64,
    /// Fraction of cases with delay error below 5 %.
    pub delay_below_5pct: f64,
    /// Fraction of cases with delay error below 10 %.
    pub delay_below_10pct: f64,
    /// Fraction of cases with slew error below 5 %.
    pub slew_below_5pct: f64,
    /// Fraction of cases with slew error below 10 %.
    pub slew_below_10pct: f64,
}

/// Figure 7 / Section 6 statistics as published.
pub fn published_sweep_stats() -> PublishedSweepStats {
    PublishedSweepStats {
        cases: 165,
        avg_delay_error: 0.06,
        avg_slew_error: 0.111,
        delay_below_5pct: 0.48,
        delay_below_10pct: 0.83,
        slew_below_5pct: 0.31,
        slew_below_10pct: 0.61,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_fifteen_rows() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 15);
        // Spot checks against the printed table.
        assert_eq!(rows[0].parasitics.r_ohms, 81.8);
        assert_eq!(rows[7].hspice_delay_ps, 39.56);
        assert_eq!(rows[14].one_ramp_slew_ps, 168.4);
    }

    #[test]
    fn published_error_helpers_match_printed_percentages() {
        let rows = table1_rows();
        // Row 1: two-ramp delay error printed as -3.2 %.
        assert!((rows[0].published_two_ramp_delay_error() - (-0.032)).abs() < 0.002);
        // Row 1: one-ramp delay error printed as 65.1 %.
        assert!((rows[0].published_one_ramp_delay_error() - 0.651).abs() < 0.005);
        // Row 15: two-ramp slew error printed as 14.2 %.
        assert!((rows[14].published_two_ramp_slew_error() - 0.142).abs() < 0.005);
        // Row 4: one-ramp slew error printed as -63.5 %.
        assert!((rows[3].published_one_ramp_slew_error() - (-0.635)).abs() < 0.005);
    }

    #[test]
    fn figure_cases_are_consistent_with_their_captions() {
        assert_eq!(figure1_case().parasitics.r_ohms, 72.44);
        assert_eq!(figure3_case().parasitics.c_pf, 1.54);
        assert_eq!(figure5_left_case().input_slew_ps, 75.0);
        assert_eq!(figure5_right_case().driver_size, 100.0);
        assert_eq!(figure6_left_case().driver_size, 25.0);
        assert_eq!(figure6_right_case().parasitics.width_um, 0.8);
        assert_eq!(
            figure4_case().parasitics.label,
            figure3_case().parasitics.label
        );
    }

    #[test]
    fn all_parasitics_are_positive_and_unique_enough() {
        let all = all_published_parasitics();
        assert_eq!(all.len(), 21);
        for p in &all {
            assert!(p.r_ohms > 0.0 && p.l_nh > 0.0 && p.c_pf > 0.0);
            assert!(p.length_mm >= 3.0 && p.length_mm <= 7.0);
            assert!(p.width_um >= 0.8 && p.width_um <= 3.0);
        }
    }

    #[test]
    fn published_sweep_stats_match_section6() {
        let s = published_sweep_stats();
        assert_eq!(s.cases, 165);
        assert!((s.avg_delay_error - 0.06).abs() < 1e-12);
        assert!((s.avg_slew_error - 0.111).abs() < 1e-12);
        assert!(s.delay_below_10pct > s.delay_below_5pct);
        assert!(s.slew_below_10pct > s.slew_below_5pct);
    }
}
