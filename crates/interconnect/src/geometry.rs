//! Wire geometry descriptions.

use rlc_numeric::units::{to_mm, to_um};

/// Physical geometry of a single on-chip wire (all dimensions in metres).
///
/// The paper sweeps length (1–7 mm) and width (0.8–3.5 µm); thickness and the
/// dielectric stack are fixed by the technology, so they live in
/// [`crate::technology::Technology`] rather than here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireGeometry {
    /// Routed length (m).
    pub length: f64,
    /// Drawn width (m).
    pub width: f64,
}

impl WireGeometry {
    /// Creates a wire geometry.
    ///
    /// # Panics
    /// Panics if either dimension is not positive.
    pub fn new(length: f64, width: f64) -> Self {
        assert!(length > 0.0, "wire length must be positive");
        assert!(width > 0.0, "wire width must be positive");
        WireGeometry { length, width }
    }

    /// Length in millimetres (for display and for the empirical fit, which is
    /// parameterized in the paper's units).
    pub fn length_mm(&self) -> f64 {
        to_mm(self.length)
    }

    /// Width in micrometres.
    pub fn width_um(&self) -> f64 {
        to_um(self.width)
    }

    /// Aspect ratio length/width (dimensionless).
    pub fn aspect_ratio(&self) -> f64 {
        self.length / self.width
    }
}

impl std::fmt::Display for WireGeometry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} mm x {:.2} um", self.length_mm(), self.width_um())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_numeric::approx_eq;
    use rlc_numeric::units::{mm, um};

    #[test]
    fn constructor_and_unit_accessors() {
        let g = WireGeometry::new(mm(5.0), um(1.6));
        assert!(approx_eq(g.length_mm(), 5.0, 1e-12));
        assert!(approx_eq(g.width_um(), 1.6, 1e-12));
        assert!(g.aspect_ratio() > 3000.0);
        assert_eq!(g.to_string(), "5.00 mm x 1.60 um");
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_rejected() {
        let _ = WireGeometry::new(0.0, um(1.0));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn negative_width_rejected() {
        let _ = WireGeometry::new(mm(1.0), -um(1.0));
    }
}
