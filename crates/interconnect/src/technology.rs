//! Back-end-of-line technology description.
//!
//! The paper uses "a commercial 1.8 V, 0.18 µm CMOS technology" whose global
//! wiring parasitics it publishes case by case. [`Technology::cmos018`]
//! captures the corresponding physical back-end parameters (metal thickness,
//! resistivity, dielectric height and permittivity, an effective
//! current-return distance for loop inductance) chosen so the
//! [`crate::extraction::PhysicalExtractor`] lands close to those published
//! values.

/// Vacuum permeability (H/m).
pub const MU0: f64 = 4.0e-7 * std::f64::consts::PI;
/// Vacuum permittivity (F/m).
pub const EPS0: f64 = 8.854_187_812_8e-12;

/// Physical back-end parameters of a metal layer used for global routing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Minimum drawn channel length (m); the paper's driver sizes are
    /// multiples of `2 * l_min`.
    pub l_min: f64,
    /// Metal resistivity (ohm·m).
    pub resistivity: f64,
    /// Metal thickness (m).
    pub metal_thickness: f64,
    /// Dielectric height between the wire and its return plane (m).
    pub dielectric_height: f64,
    /// Relative permittivity of the inter-layer dielectric.
    pub epsilon_r: f64,
    /// Effective distance to the current return path used for the loop
    /// inductance estimate (m). On-chip return currents spread over nearby
    /// power/ground wiring, so this is a calibration parameter rather than a
    /// drawn dimension.
    pub return_distance: f64,
}

impl Technology {
    /// The calibrated 0.18 µm, 1.8 V technology used throughout the
    /// reproduction.
    pub fn cmos018() -> Self {
        Technology {
            vdd: 1.8,
            l_min: 0.18e-6,
            // Copper with barrier/temperature overhead.
            resistivity: 2.2e-8,
            metal_thickness: 0.90e-6,
            dielectric_height: 0.58e-6,
            epsilon_r: 3.9,
            return_distance: 120e-6,
        }
    }

    /// Sheet resistance of the routing layer (ohms per square).
    pub fn sheet_resistance(&self) -> f64 {
        self.resistivity / self.metal_thickness
    }

    /// Dielectric permittivity (F/m).
    pub fn permittivity(&self) -> f64 {
        self.epsilon_r * EPS0
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::cmos018()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmos018_constants_are_plausible() {
        let t = Technology::cmos018();
        assert_eq!(t.vdd, 1.8);
        // Global-layer sheet resistance in 0.18 um technologies is a few
        // tens of milliohms per square.
        let rsh = t.sheet_resistance();
        assert!(rsh > 0.015 && rsh < 0.04, "sheet resistance {rsh}");
        assert!(t.permittivity() > 3.0e-11 && t.permittivity() < 4.0e-11);
    }

    #[test]
    fn default_is_cmos018() {
        assert_eq!(Technology::default(), Technology::cmos018());
    }
}
