//! The voltage breakpoint of the two-ramp waveform (Equation 1 of the paper).
//!
//! At the driving point a transmission line initially looks like its
//! characteristic impedance, so the driver and line form a resistive divider:
//! the initial step rises to `f · VDD` with `f = Z0 / (Z0 + Rs)`. The first
//! ramp of the two-ramp model ends at that voltage; the second ramp (the
//! first reflection) carries the waveform the rest of the way to `VDD`.

/// Computes the breakpoint fraction `f = Z0 / (Z0 + Rs)`.
///
/// # Panics
/// Panics if either impedance is not positive.
///
/// ```
/// use rlc_ceff::voltage_breakpoint;
/// // A 75X driver (Rs ~ 70 ohm) on a 68-ohm line: the initial step is just
/// // below half the supply, as in the paper's Figure 1.
/// let f = voltage_breakpoint(68.0, 70.0);
/// assert!(f > 0.45 && f < 0.55);
/// ```
pub fn voltage_breakpoint(z0: f64, rs: f64) -> f64 {
    assert!(z0 > 0.0, "characteristic impedance must be positive");
    assert!(rs > 0.0, "driver resistance must be positive");
    z0 / (z0 + rs)
}

/// Height of the initial step in volts, `f · VDD`.
///
/// # Panics
/// Panics if `vdd` is not positive (impedance checks as in
/// [`voltage_breakpoint`]).
pub fn initial_step_height(z0: f64, rs: f64, vdd: f64) -> f64 {
    assert!(vdd > 0.0, "supply voltage must be positive");
    voltage_breakpoint(z0, rs) * vdd
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_numeric::approx_eq;

    #[test]
    fn equal_impedances_give_half_supply() {
        assert!(approx_eq(voltage_breakpoint(70.0, 70.0), 0.5, 1e-12));
        assert!(approx_eq(initial_step_height(70.0, 70.0, 1.8), 0.9, 1e-12));
    }

    #[test]
    fn weak_drivers_give_small_steps_and_strong_drivers_large_steps() {
        // Weak driver (25X, Rs ~ 200 ohm) on a 68-ohm line: small step,
        // transmission-line effects invisible (paper's Figure 6 left).
        let weak = voltage_breakpoint(68.0, 200.0);
        assert!(weak < 0.3);
        // Very strong driver: step approaches the full supply.
        let strong = voltage_breakpoint(68.0, 10.0);
        assert!(strong > 0.85);
        assert!(strong > weak);
    }

    #[test]
    fn breakpoint_is_monotonic_in_both_arguments() {
        assert!(voltage_breakpoint(80.0, 70.0) > voltage_breakpoint(60.0, 70.0));
        assert!(voltage_breakpoint(70.0, 50.0) > voltage_breakpoint(70.0, 90.0));
    }

    #[test]
    #[should_panic(expected = "impedance must be positive")]
    fn zero_impedance_rejected() {
        let _ = voltage_breakpoint(0.0, 50.0);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn zero_resistance_rejected() {
        let _ = voltage_breakpoint(50.0, 0.0);
    }
}
