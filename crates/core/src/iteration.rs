//! The effective-capacitance fixed-point iterations.
//!
//! "Ceff1 can be obtained by iterating on Tr1. We start with an initial guess
//! of Ceff1 equal to the total capacitance and iteratively improve the
//! effective capacitance until the value converges. Tr1 at each step can be
//! obtained from pre-characterized cell information" (Section 4.1). The same
//! scheme is used for `Ceff2` and for the single-Ceff fallback.

use rlc_charlib::DriverCell;
use rlc_moments::RationalAdmittance;

use crate::charge::{ceff_first_ramp, ceff_second_ramp};
use crate::CeffError;

/// Convergence controls for the Ceff iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationSettings {
    /// Relative change of Ceff below which the iteration is converged.
    pub rel_tolerance: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Damping factor in `(0, 1]`: 1 is the paper's plain fixed-point update,
    /// smaller values stabilize rare oscillating cases.
    pub damping: f64,
    /// Lower clamp for the effective capacitance as a fraction of the total
    /// capacitance (keeps the cell-table lookup inside a physical range even
    /// when a non-passive moment fit momentarily produces a negative charge).
    pub min_fraction_of_total: f64,
}

impl Default for IterationSettings {
    fn default() -> Self {
        IterationSettings {
            rel_tolerance: 1e-4,
            max_iterations: 100,
            damping: 1.0,
            min_fraction_of_total: 0.02,
        }
    }
}

/// Result of one converged Ceff iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CeffIteration {
    /// Converged effective capacitance (farads).
    pub ceff: f64,
    /// Full-swing ramp time looked up from the cell table at `ceff` (seconds).
    pub ramp_time: f64,
    /// 50 % cell delay looked up at `ceff` (seconds).
    pub delay: f64,
    /// Iterations used.
    pub iterations: usize,
}

fn iterate_ceff<G>(
    cell: &DriverCell,
    input_slew: f64,
    total_capacitance: f64,
    ceiling_fraction: f64,
    settings: &IterationSettings,
    which: &'static str,
    mut ceff_of_ramp: G,
) -> Result<CeffIteration, CeffError>
where
    G: FnMut(f64) -> f64,
{
    assert!(input_slew > 0.0, "input slew must be positive");
    assert!(
        total_capacitance > 0.0,
        "total capacitance must be positive"
    );
    let floor = settings.min_fraction_of_total * total_capacitance;
    let ceiling = ceiling_fraction * total_capacitance;
    let mut ceff = total_capacitance;
    let mut ramp = cell.ramp_time(input_slew, ceff);
    for it in 1..=settings.max_iterations {
        let raw = ceff_of_ramp(ramp);
        let clamped = raw.clamp(floor, ceiling);
        let next = (1.0 - settings.damping) * ceff + settings.damping * clamped;
        let change = (next - ceff).abs() / ceff.max(1e-30);
        ceff = next;
        ramp = cell.ramp_time(input_slew, ceff);
        if change < settings.rel_tolerance {
            return Ok(CeffIteration {
                ceff,
                ramp_time: ramp,
                delay: cell.delay(input_slew, ceff),
                iterations: it,
            });
        }
    }
    Err(CeffError::IterationDiverged {
        which,
        iterations: settings.max_iterations,
    })
}

/// Iterates the first-ramp effective capacitance `Ceff1` (or, with `f = 1`,
/// the classic single effective capacitance). `Ceff1` is clamped to the total
/// capacitance: the charge delivered while the output rises to the breakpoint
/// can never exceed what a lumped total capacitance would take.
///
/// # Errors
/// Returns [`CeffError::IterationDiverged`] if the fixed point does not
/// settle within the allowed iterations.
pub fn iterate_ceff1(
    cell: &DriverCell,
    fit: &RationalAdmittance,
    input_slew: f64,
    f: f64,
    settings: &IterationSettings,
) -> Result<CeffIteration, CeffError> {
    iterate_ceff(
        cell,
        input_slew,
        fit.total_capacitance(),
        1.0,
        settings,
        "Ceff1",
        |ramp| ceff_first_ramp(fit, ramp, f),
    )
}

/// Iterates the second-ramp effective capacitance `Ceff2`, given the already
/// converged first-ramp duration `tr1`.
///
/// Unlike `Ceff1`, the second-interval charge legitimately exceeds the total
/// capacitance times the remaining voltage swing: the reflection returns the
/// charge that was shielded during the first ramp. The iterate is therefore
/// only clamped at three times the total capacitance, as a guard against
/// numerically pathological fits.
///
/// # Errors
/// Returns [`CeffError::IterationDiverged`] if the fixed point does not
/// settle within the allowed iterations.
pub fn iterate_ceff2(
    cell: &DriverCell,
    fit: &RationalAdmittance,
    input_slew: f64,
    f: f64,
    tr1: f64,
    settings: &IterationSettings,
) -> Result<CeffIteration, CeffError> {
    iterate_ceff(
        cell,
        input_slew,
        fit.total_capacitance(),
        3.0,
        settings,
        "Ceff2",
        |ramp| ceff_second_ramp(fit, tr1, ramp, f),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_charlib::{CharacterizationGrid, DriverCell, TimingTable};
    use rlc_interconnect::RlcLine;
    use rlc_moments::distributed_admittance_moments;
    use rlc_numeric::units::{ff, mm, nh, pf, ps};
    use rlc_spice::testbench::InverterSpec;

    /// A synthetic affine cell table (fast, deterministic) for iteration tests.
    fn synthetic_cell(size: f64) -> DriverCell {
        let slews = vec![ps(50.0), ps(100.0), ps(200.0)];
        let loads = vec![ff(50.0), ff(200.0), ff(500.0), pf(1.0), pf(2.0)];
        // Transition grows affinely with load, inversely with size.
        let transition: Vec<Vec<f64>> = slews
            .iter()
            .map(|&s| {
                loads
                    .iter()
                    .map(|&c| ps(10.0) + 0.1 * s + (c / 1e-12) * ps(12000.0) / size)
                    .collect()
            })
            .collect();
        let delay: Vec<Vec<f64>> = slews
            .iter()
            .map(|&s| {
                loads
                    .iter()
                    .map(|&c| ps(5.0) + 0.2 * s + (c / 1e-12) * ps(4000.0) / size)
                    .collect()
            })
            .collect();
        DriverCell::from_parts(
            InverterSpec::sized_018(size),
            TimingTable::new(slews, loads, delay, transition),
            5000.0 / size,
        )
    }

    fn paper_fit() -> RationalAdmittance {
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let m = distributed_admittance_moments(&line, ff(10.0), 5);
        RationalAdmittance::from_moments(&m).unwrap()
    }

    #[test]
    fn ceff1_iteration_converges_and_shields_the_line() {
        let cell = synthetic_cell(75.0);
        let fit = paper_fit();
        let it =
            iterate_ceff1(&cell, &fit, ps(100.0), 0.48, &IterationSettings::default()).unwrap();
        assert!(it.iterations < 50);
        assert!(it.ceff > 0.0 && it.ceff < fit.total_capacitance());
        // The first ramp sees a strongly shielded load (most of the line's
        // capacitance is beyond one time of flight).
        assert!(
            it.ceff < 0.7 * fit.total_capacitance(),
            "ceff1 = {:.3e}",
            it.ceff
        );
        assert!(it.ramp_time > 0.0 && it.delay > 0.0);
    }

    #[test]
    fn ceff2_exceeds_ceff1() {
        let cell = synthetic_cell(75.0);
        let fit = paper_fit();
        let f = 0.48;
        let settings = IterationSettings::default();
        let first = iterate_ceff1(&cell, &fit, ps(100.0), f, &settings).unwrap();
        let second = iterate_ceff2(&cell, &fit, ps(100.0), f, first.ramp_time, &settings).unwrap();
        assert!(
            second.ceff > first.ceff,
            "ceff2 ({:.3e}) must exceed ceff1 ({:.3e}): the reflection returns the shielded charge",
            second.ceff,
            first.ceff
        );
        // The reflection can return more charge than the lumped total would take
        // over the same voltage swing, but not absurdly more.
        assert!(second.ceff <= 3.0 * fit.total_capacitance());
    }

    #[test]
    fn single_ceff_with_f_one_lies_between_ceff1_and_total() {
        let cell = synthetic_cell(75.0);
        let fit = paper_fit();
        let settings = IterationSettings::default();
        let ceff1 = iterate_ceff1(&cell, &fit, ps(100.0), 0.48, &settings).unwrap();
        let single = iterate_ceff1(&cell, &fit, ps(100.0), 1.0, &settings).unwrap();
        assert!(single.ceff > ceff1.ceff);
        assert!(single.ceff <= fit.total_capacitance());
    }

    #[test]
    fn stronger_drivers_see_more_shielding() {
        let fit = paper_fit();
        let settings = IterationSettings::default();
        let weak = iterate_ceff1(&synthetic_cell(25.0), &fit, ps(100.0), 1.0, &settings).unwrap();
        let strong =
            iterate_ceff1(&synthetic_cell(125.0), &fit, ps(100.0), 1.0, &settings).unwrap();
        assert!(
            strong.ceff < weak.ceff,
            "a faster driver sees a smaller effective capacitance"
        );
    }

    #[test]
    fn damping_still_converges() {
        let cell = synthetic_cell(75.0);
        let fit = paper_fit();
        let settings = IterationSettings {
            damping: 0.5,
            ..IterationSettings::default()
        };
        let it = iterate_ceff1(&cell, &fit, ps(100.0), 0.5, &settings).unwrap();
        let plain =
            iterate_ceff1(&cell, &fit, ps(100.0), 0.5, &IterationSettings::default()).unwrap();
        assert!((it.ceff - plain.ceff).abs() / plain.ceff < 1e-3);
    }

    #[test]
    fn divergence_is_reported() {
        let cell = synthetic_cell(75.0);
        let fit = paper_fit();
        let settings = IterationSettings {
            max_iterations: 1,
            rel_tolerance: 1e-12,
            ..IterationSettings::default()
        };
        assert!(matches!(
            iterate_ceff1(&cell, &fit, ps(100.0), 0.5, &settings),
            Err(CeffError::IterationDiverged { which: "Ceff1", .. })
        ));
    }

    #[test]
    fn iteration_with_real_characterized_cell() {
        // End-to-end sanity with an actual simulated table (coarse grid).
        let cell =
            DriverCell::characterize(75.0, &CharacterizationGrid::coarse_for_tests()).unwrap();
        let fit = paper_fit();
        let it = iterate_ceff1(&cell, &fit, ps(100.0), 1.0, &IterationSettings::default()).unwrap();
        assert!(it.ceff > 0.1e-12 && it.ceff <= fit.total_capacitance());
    }
}
