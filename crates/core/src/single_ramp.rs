//! The single-ramp (classic effective capacitance) driver output model, used
//! when the inductance criteria are not met and as the "1 ramp" baseline of
//! the paper's Table 1.

use rlc_spice::{SourceWaveform, Waveform};

/// A saturated single-ramp waveform of full-swing duration `tr` starting at
/// `start_time`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleRampModel {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Full-swing ramp duration (s).
    pub tr: f64,
    /// Absolute time at which the output transition starts (s).
    pub start_time: f64,
}

impl SingleRampModel {
    /// Creates a single-ramp waveform description.
    ///
    /// # Panics
    /// Panics if `vdd` or `tr` is not positive.
    pub fn new(vdd: f64, tr: f64, start_time: f64) -> Self {
        assert!(vdd > 0.0, "supply must be positive");
        assert!(tr > 0.0, "ramp duration must be positive");
        SingleRampModel {
            vdd,
            tr,
            start_time,
        }
    }

    /// Voltage at absolute time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        let tau = t - self.start_time;
        (self.vdd * tau / self.tr).clamp(0.0, self.vdd)
    }

    /// Absolute time of the crossing of `fraction · vdd`.
    pub fn crossing_time(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction));
        self.start_time + fraction * self.tr
    }

    /// 50 % delay relative to the input's 50 % crossing.
    pub fn delay_from(&self, input_t50: f64) -> f64 {
        self.crossing_time(0.5) - input_t50
    }

    /// 10–90 % transition time (0.8 · `tr` for a linear ramp).
    pub fn slew_10_90(&self) -> f64 {
        0.8 * self.tr
    }

    /// The waveform as a PWL voltage source padded to `t_stop`.
    pub fn to_source(&self, t_stop: f64) -> SourceWaveform {
        let mut pts = vec![(0.0, 0.0), (self.start_time.max(0.0), 0.0)];
        pts.push((self.start_time + self.tr, self.vdd));
        if t_stop > self.start_time + self.tr {
            pts.push((t_stop, self.vdd));
        }
        pts.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-30 && (a.1 - b.1).abs() < 1e-30);
        SourceWaveform::pwl(pts)
    }

    /// Samples the model into a [`Waveform`].
    pub fn to_waveform(&self, t_stop: f64, n: usize) -> Waveform {
        Waveform::from_fn(|t| self.value_at(t), t_stop, n)
    }
}

impl std::fmt::Display for SingleRampModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "single ramp: Tr={:.1} ps, start={:.1} ps",
            self.tr * 1e12,
            self.start_time * 1e12
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_numeric::approx_eq;
    use rlc_numeric::units::ps;

    #[test]
    fn ramp_shape_and_metrics() {
        let m = SingleRampModel::new(1.8, ps(200.0), ps(50.0));
        assert_eq!(m.value_at(0.0), 0.0);
        assert!(approx_eq(m.value_at(ps(150.0)), 0.9, 1e-12));
        assert_eq!(m.value_at(ps(500.0)), 1.8);
        assert!(approx_eq(m.crossing_time(0.5), ps(150.0), 1e-12));
        assert!(approx_eq(m.delay_from(ps(100.0)), ps(50.0), 1e-12));
        assert!(approx_eq(m.slew_10_90(), ps(160.0), 1e-12));
    }

    #[test]
    fn pwl_source_matches_model() {
        let m = SingleRampModel::new(1.8, ps(200.0), ps(50.0));
        let src = m.to_source(ps(1000.0));
        for &t in &[0.0, ps(40.0), ps(100.0), ps(250.0), ps(800.0)] {
            assert!(approx_eq(src.value_at(t), m.value_at(t), 1e-9));
        }
        let w = m.to_waveform(ps(600.0), 600);
        assert!(approx_eq(
            w.slew_10_90(1.8, true).unwrap(),
            m.slew_10_90(),
            1e-2
        ));
    }

    #[test]
    fn display_reports_picoseconds() {
        assert!(SingleRampModel::new(1.8, ps(120.0), 0.0)
            .to_string()
            .contains("Tr=120.0 ps"));
    }

    #[test]
    #[should_panic(expected = "ramp duration must be positive")]
    fn zero_tr_rejected() {
        let _ = SingleRampModel::new(1.8, 0.0, 0.0);
    }
}
