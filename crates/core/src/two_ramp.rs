//! The two-ramp driver output waveform (Figure 2 / Equation 2 of the paper).

use rlc_spice::{SourceWaveform, Waveform};

/// A two-ramp saturated waveform: a first ramp of full-swing duration `tr1`
/// up to the breakpoint `f·vdd`, followed by a second ramp of full-swing
/// duration `tr2` (already plateau-corrected) that completes the transition
/// to `vdd`. `start_time` places the waveform on the absolute time axis of
/// the testbench (the instant the driver output starts rising).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoRampModel {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Breakpoint fraction `f = Z0/(Z0+Rs)`.
    pub f: f64,
    /// Full-swing duration of the first ramp (s).
    pub tr1: f64,
    /// Full-swing duration of the second ramp, after the plateau correction
    /// (s).
    pub tr2: f64,
    /// Absolute time at which the output transition starts (s).
    pub start_time: f64,
}

impl TwoRampModel {
    /// Creates a two-ramp waveform description.
    ///
    /// # Panics
    /// Panics if `vdd`, `tr1` or `tr2` is not positive, or `f` is outside
    /// `(0, 1)`.
    pub fn new(vdd: f64, f: f64, tr1: f64, tr2: f64, start_time: f64) -> Self {
        assert!(vdd > 0.0, "supply must be positive");
        assert!(f > 0.0 && f < 1.0, "breakpoint fraction must be in (0, 1)");
        assert!(tr1 > 0.0 && tr2 > 0.0, "ramp durations must be positive");
        TwoRampModel {
            vdd,
            f,
            tr1,
            tr2,
            start_time,
        }
    }

    /// Time (relative to `start_time`) at which the first ramp ends.
    pub fn breakpoint_time(&self) -> f64 {
        self.f * self.tr1
    }

    /// Time (relative to `start_time`) at which the waveform reaches `vdd`.
    pub fn end_time(&self) -> f64 {
        self.f * self.tr1 + (1.0 - self.f) * self.tr2
    }

    /// Voltage at absolute time `t` (Equation 2, with saturation at 0 and
    /// `vdd` outside the transition window).
    pub fn value_at(&self, t: f64) -> f64 {
        let tau = t - self.start_time;
        if tau <= 0.0 {
            return 0.0;
        }
        let t_break = self.breakpoint_time();
        if tau <= t_break {
            self.vdd * tau / self.tr1
        } else if tau < self.end_time() {
            self.vdd * tau / self.tr2 + (1.0 - self.tr1 / self.tr2) * self.f * self.vdd
        } else {
            self.vdd
        }
    }

    /// Absolute time of the first crossing of `fraction · vdd`.
    pub fn crossing_time(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction));
        let target = fraction * self.vdd;
        if fraction <= self.f {
            self.start_time + target / self.vdd * self.tr1
        } else {
            // Invert the second-ramp expression.
            self.start_time + (target / self.vdd - (1.0 - self.tr1 / self.tr2) * self.f) * self.tr2
        }
    }

    /// 50 % delay of the modelled driver output relative to the input's 50 %
    /// crossing time.
    pub fn delay_from(&self, input_t50: f64) -> f64 {
        self.crossing_time(0.5) - input_t50
    }

    /// 10–90 % transition time of the modelled waveform (the slew metric the
    /// paper reports).
    pub fn slew_10_90(&self) -> f64 {
        self.crossing_time(0.9) - self.crossing_time(0.1)
    }

    /// The waveform as a piecewise-linear voltage source for the far-end
    /// simulation, padded with a flat tail up to `t_stop`.
    pub fn to_source(&self, t_stop: f64) -> SourceWaveform {
        let mut pts = vec![(0.0, 0.0), (self.start_time.max(0.0), 0.0)];
        pts.push((self.start_time + self.breakpoint_time(), self.f * self.vdd));
        pts.push((self.start_time + self.end_time(), self.vdd));
        if t_stop > self.start_time + self.end_time() {
            pts.push((t_stop, self.vdd));
        }
        // Remove any duplicate leading point if start_time == 0.
        pts.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-30 && (a.1 - b.1).abs() < 1e-30);
        SourceWaveform::pwl(pts)
    }

    /// Samples the model into a [`Waveform`] over `[0, t_stop]` with `n`
    /// intervals, for plotting and RMS comparisons against simulation.
    pub fn to_waveform(&self, t_stop: f64, n: usize) -> Waveform {
        Waveform::from_fn(|t| self.value_at(t), t_stop, n)
    }
}

impl std::fmt::Display for TwoRampModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "two-ramp: f={:.3}, Tr1={:.1} ps, Tr2={:.1} ps, start={:.1} ps",
            self.f,
            self.tr1 * 1e12,
            self.tr2 * 1e12,
            self.start_time * 1e12
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_numeric::approx_eq;
    use rlc_numeric::units::ps;

    fn model() -> TwoRampModel {
        TwoRampModel::new(1.8, 0.5, ps(60.0), ps(240.0), ps(100.0))
    }

    #[test]
    fn piecewise_values_follow_equation_2() {
        let m = model();
        assert_eq!(m.value_at(ps(50.0)), 0.0);
        // Midway through the first ramp.
        assert!(approx_eq(
            m.value_at(ps(100.0) + ps(15.0)),
            1.8 * 15.0 / 60.0,
            1e-12
        ));
        // At the breakpoint: f*vdd.
        assert!(approx_eq(m.value_at(ps(100.0) + ps(30.0)), 0.9, 1e-12));
        // End of the transition: vdd, then saturated.
        let end = ps(100.0) + m.end_time();
        assert!(approx_eq(m.value_at(end), 1.8, 1e-9));
        assert_eq!(m.value_at(end + ps(500.0)), 1.8);
    }

    #[test]
    fn continuity_at_the_breakpoint() {
        let m = TwoRampModel::new(1.8, 0.47, ps(55.0), ps(310.0), 0.0);
        let tb = m.breakpoint_time();
        let below = m.value_at(tb - 1e-18);
        let above = m.value_at(tb + 1e-18);
        assert!((below - above).abs() < 1e-6);
        assert!(approx_eq(below, 0.47 * 1.8, 1e-6));
    }

    #[test]
    fn crossing_times_invert_the_waveform() {
        let m = model();
        for frac in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let t = m.crossing_time(frac);
            assert!(
                approx_eq(m.value_at(t), frac * 1.8, 1e-9),
                "fraction {frac}: value {} at t {}",
                m.value_at(t),
                t
            );
        }
    }

    #[test]
    fn delay_and_slew_metrics() {
        let m = model();
        // 50 % crossing is exactly at the breakpoint (f = 0.5): 30 ps after start.
        let d = m.delay_from(ps(80.0));
        assert!(approx_eq(d, ps(100.0) + ps(30.0) - ps(80.0), 1e-9));
        // Slew: 10 % on ramp 1 (6 ps), 90 % on ramp 2.
        let slew = m.slew_10_90();
        let expected = (0.5 - 0.1) * ps(60.0) + (0.9 - 0.5) * ps(240.0);
        assert!(approx_eq(slew, expected, 1e-9));
    }

    #[test]
    fn second_ramp_dominates_slew_when_plateau_corrected() {
        let short = TwoRampModel::new(1.8, 0.5, ps(60.0), ps(100.0), 0.0);
        let long = TwoRampModel::new(1.8, 0.5, ps(60.0), ps(400.0), 0.0);
        assert!(long.slew_10_90() > short.slew_10_90());
    }

    #[test]
    fn pwl_source_matches_the_analytic_waveform() {
        let m = model();
        let src = m.to_source(ps(1000.0));
        for &t in &[
            0.0,
            ps(90.0),
            ps(115.0),
            ps(130.0),
            ps(200.0),
            ps(400.0),
            ps(900.0),
        ] {
            assert!(
                approx_eq(src.value_at(t), m.value_at(t), 1e-9),
                "t = {t}: {} vs {}",
                src.value_at(t),
                m.value_at(t)
            );
        }
    }

    #[test]
    fn sampled_waveform_has_same_slew() {
        let m = model();
        let w = m.to_waveform(ps(800.0), 4000);
        let slew = w.slew_10_90(1.8, true).unwrap();
        assert!(approx_eq(slew, m.slew_10_90(), 1e-2));
    }

    #[test]
    fn display_reports_picoseconds() {
        let s = model().to_string();
        assert!(s.contains("Tr1=60.0 ps"));
        assert!(s.contains("f=0.500"));
    }

    #[test]
    #[should_panic(expected = "breakpoint fraction")]
    fn f_outside_unit_interval_rejected() {
        let _ = TwoRampModel::new(1.8, 1.2, ps(50.0), ps(100.0), 0.0);
    }
}
