//! Inductance-significance screening (Equation 9 of the paper).
//!
//! The paper combines the Deutsch/Ismail criteria with one addition: the
//! transition time compared against the time of flight uses the **driver
//! output** rise time (the initial ramp `Tr1` from the `Ceff1` iteration)
//! rather than the input transition time, because inductive behaviour is
//! governed by how fast the driver actually slews the line.
//!
//! ```text
//! C_L << C·l          (the fan-out load does not dominate the line)
//! R·l  < 2·Z0         (the line is not attenuation-dominated)
//! R_s  < 2·Z0         (the driver is strong enough to launch a step)
//! T_r1 < 2·t_f        (the output transition is faster than the round trip)
//! ```

use rlc_interconnect::RlcLine;

/// Thresholds for the significance checks. The structural form follows the
/// paper; the `load_fraction_limit` makes the "much less than" in `C_L << C·l`
/// concrete.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InductanceCriteria {
    /// Maximum allowed `C_L / (C·l)` for the load check (default 0.3).
    pub load_fraction_limit: f64,
    /// Multiplier on `Z0` in the line-resistance check (default 2.0, as in
    /// the paper).
    pub line_resistance_factor: f64,
    /// Multiplier on `Z0` in the driver-resistance check (default 2.0).
    pub driver_resistance_factor: f64,
    /// Multiplier on `t_f` in the rise-time check (default 2.0).
    pub rise_time_factor: f64,
}

impl Default for InductanceCriteria {
    fn default() -> Self {
        InductanceCriteria {
            load_fraction_limit: 0.3,
            line_resistance_factor: 2.0,
            driver_resistance_factor: 2.0,
            rise_time_factor: 2.0,
        }
    }
}

/// One individual check of the criteria.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriterionCheck {
    /// The measured value.
    pub value: f64,
    /// The limit it is compared against.
    pub limit: f64,
    /// Whether the check passes (value below limit).
    pub passes: bool,
}

impl CriterionCheck {
    fn new(value: f64, limit: f64) -> Self {
        CriterionCheck {
            value,
            limit,
            passes: value < limit,
        }
    }
}

/// The full evaluation of Equation 9 for one case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriteriaReport {
    /// `C_L` vs. `load_fraction_limit · C·l`.
    pub load_check: CriterionCheck,
    /// `R·l` vs. `line_resistance_factor · Z0`.
    pub line_resistance_check: CriterionCheck,
    /// `R_s` vs. `driver_resistance_factor · Z0`.
    pub driver_resistance_check: CriterionCheck,
    /// `T_r1` vs. `rise_time_factor · t_f`.
    pub rise_time_check: CriterionCheck,
}

impl CriteriaReport {
    /// The report for a load with no transmission line at all (a lumped
    /// capacitor or an RC pi model): inductance is trivially insignificant,
    /// expressed as every check failing against a zero limit.
    pub fn without_line(c_load: f64) -> CriteriaReport {
        let fail = |value: f64| CriterionCheck {
            value,
            limit: 0.0,
            passes: false,
        };
        CriteriaReport {
            load_check: fail(c_load),
            line_resistance_check: fail(0.0),
            driver_resistance_check: fail(0.0),
            rise_time_check: fail(0.0),
        }
    }

    /// Whether inductive effects are significant (all four checks pass) and
    /// the two-ramp model should be used.
    pub fn inductance_significant(&self) -> bool {
        self.load_check.passes
            && self.line_resistance_check.passes
            && self.driver_resistance_check.passes
            && self.rise_time_check.passes
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "CL {} | Rl {} | Rs {} | Tr1 {} -> {}",
            if self.load_check.passes { "ok" } else { "FAIL" },
            if self.line_resistance_check.passes {
                "ok"
            } else {
                "FAIL"
            },
            if self.driver_resistance_check.passes {
                "ok"
            } else {
                "FAIL"
            },
            if self.rise_time_check.passes {
                "ok"
            } else {
                "FAIL"
            },
            if self.inductance_significant() {
                "inductance significant (two-ramp model)"
            } else {
                "inductance not significant (single ramp)"
            }
        )
    }
}

impl InductanceCriteria {
    /// Evaluates the criteria for a line, its load, the driver's
    /// on-resistance and the converged first-ramp duration `tr1`.
    ///
    /// # Panics
    /// Panics if `tr1` or `driver_resistance` is not positive or `c_load` is
    /// negative.
    pub fn evaluate(
        &self,
        line: &RlcLine,
        c_load: f64,
        driver_resistance: f64,
        tr1: f64,
    ) -> CriteriaReport {
        self.evaluate_raw(
            line.characteristic_impedance(),
            line.time_of_flight(),
            line.resistance(),
            line.capacitance(),
            c_load,
            driver_resistance,
            tr1,
        )
    }

    /// Evaluates the criteria from raw wave parameters instead of an
    /// [`RlcLine`] — the entry point used by the timing-engine facade, whose
    /// load models carry `(Z0, t_f, R, C)` without necessarily owning a line.
    ///
    /// # Panics
    /// Panics if `tr1` or `driver_resistance` is not positive or `c_load` is
    /// negative.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_raw(
        &self,
        z0: f64,
        time_of_flight: f64,
        line_resistance: f64,
        line_capacitance: f64,
        c_load: f64,
        driver_resistance: f64,
        tr1: f64,
    ) -> CriteriaReport {
        assert!(tr1 > 0.0, "tr1 must be positive");
        assert!(
            driver_resistance > 0.0,
            "driver resistance must be positive"
        );
        assert!(c_load >= 0.0, "load capacitance must be non-negative");
        CriteriaReport {
            load_check: CriterionCheck::new(c_load, self.load_fraction_limit * line_capacitance),
            line_resistance_check: CriterionCheck::new(
                line_resistance,
                self.line_resistance_factor * z0,
            ),
            driver_resistance_check: CriterionCheck::new(
                driver_resistance,
                self.driver_resistance_factor * z0,
            ),
            rise_time_check: CriterionCheck::new(tr1, self.rise_time_factor * time_of_flight),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_numeric::units::{ff, mm, nh, pf, ps};

    fn inductive_line() -> RlcLine {
        // 5 mm / 1.6 um: Z0 ~ 68 ohm, tf ~ 75 ps, R = 72 ohm.
        RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0))
    }

    #[test]
    fn strong_driver_on_wide_line_is_inductive() {
        let report = InductanceCriteria::default().evaluate(
            &inductive_line(),
            ff(10.0),
            70.0,     // 75X-class driver
            ps(60.0), // fast initial ramp
        );
        assert!(report.inductance_significant(), "{}", report.summary());
    }

    #[test]
    fn weak_driver_fails_the_driver_resistance_check() {
        // A 25X driver (Rs ~ 200 ohm) on the same line: Figure 6 left.
        let report =
            InductanceCriteria::default().evaluate(&inductive_line(), ff(10.0), 220.0, ps(150.0));
        assert!(!report.driver_resistance_check.passes);
        assert!(!report.inductance_significant());
        assert!(report.summary().contains("single ramp"));
    }

    #[test]
    fn resistive_line_fails_the_attenuation_check() {
        // A long narrow line: R >> 2 Z0.
        let line = RlcLine::new(400.0, nh(7.0), pf(1.5), mm(7.0));
        let report = InductanceCriteria::default().evaluate(&line, ff(10.0), 70.0, ps(60.0));
        assert!(!report.line_resistance_check.passes);
        assert!(!report.inductance_significant());
    }

    #[test]
    fn slow_output_ramp_fails_the_rise_time_check() {
        // Short line (tf ~ 15 ps) driven with a slow output ramp: inductance
        // is screened out even though the impedances would allow it.
        let line = RlcLine::new(15.0, nh(1.0), pf(0.22), mm(1.0));
        let report = InductanceCriteria::default().evaluate(&line, ff(5.0), 50.0, ps(120.0));
        assert!(!report.rise_time_check.passes);
        assert!(!report.inductance_significant());
    }

    #[test]
    fn heavy_fanout_load_fails_the_load_check() {
        let report =
            InductanceCriteria::default().evaluate(&inductive_line(), pf(0.9), 70.0, ps(60.0));
        assert!(!report.load_check.passes);
        assert!(!report.inductance_significant());
    }

    #[test]
    fn thresholds_are_tunable() {
        let strict = InductanceCriteria {
            rise_time_factor: 0.5,
            ..InductanceCriteria::default()
        };
        let report = strict.evaluate(&inductive_line(), ff(10.0), 70.0, ps(60.0));
        assert!(!report.rise_time_check.passes);
    }

    #[test]
    fn evaluate_raw_matches_evaluate() {
        let line = inductive_line();
        let via_line = InductanceCriteria::default().evaluate(&line, ff(10.0), 70.0, ps(60.0));
        let raw = InductanceCriteria::default().evaluate_raw(
            line.characteristic_impedance(),
            line.time_of_flight(),
            line.resistance(),
            line.capacitance(),
            ff(10.0),
            70.0,
            ps(60.0),
        );
        assert_eq!(via_line, raw);
    }

    #[test]
    fn without_line_is_never_significant() {
        let report = CriteriaReport::without_line(ff(10.0));
        assert!(!report.inductance_significant());
        assert!(report.summary().contains("single ramp"));
        assert_eq!(report.load_check.value, ff(10.0));
    }

    #[test]
    fn summary_mentions_every_check() {
        let report =
            InductanceCriteria::default().evaluate(&inductive_line(), ff(10.0), 70.0, ps(60.0));
        let s = report.summary();
        assert!(s.contains("CL") && s.contains("Rl") && s.contains("Rs") && s.contains("Tr1"));
    }
}
