//! Far-end response computation.
//!
//! Step 5 of the paper's flow: "Replace the driver with a voltage source
//! consisting of two ramps and compute the far-end response of the
//! interconnect." The modelled waveform becomes an ideal PWL source driving
//! the same segmented net, and the far-end delay and slew are measured from
//! that (purely linear, fast) simulation.
//!
//! The propagation is topology-generic: [`TreeFarEndResponse`] measures
//! **every named sink** of an [`RlcTree`], and the classic single-line
//! [`FarEndResponse`] is the one-branch special case of that path.

use rlc_interconnect::{RlcLine, RlcTree};
use rlc_numeric::units::ps;
use rlc_spice::circuit::Circuit;
use rlc_spice::transient::{TransientAnalysis, TransientOptions};
use rlc_spice::Waveform;

use crate::flow::DriverOutputModel;
use crate::CeffError;

/// Options for the far-end propagation simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FarEndOptions {
    /// Number of ladder segments (default 40).
    pub segments: usize,
    /// Transient time step (default 0.5 ps).
    pub time_step: f64,
    /// Extra settling time added after the modelled transition completes
    /// (default 500 ps).
    pub settle_time: f64,
}

impl Default for FarEndOptions {
    fn default() -> Self {
        FarEndOptions {
            segments: 40,
            time_step: ps(0.5),
            settle_time: ps(500.0),
        }
    }
}

/// The far-end response produced by driving the line with a modelled
/// driver-output waveform.
#[derive(Debug, Clone)]
pub struct FarEndResponse {
    /// Far-end voltage waveform.
    pub far_waveform: Waveform,
    /// Near-end (source) waveform actually applied.
    pub near_waveform: Waveform,
    /// 50 % delay of the far end measured from the input's 50 % crossing (s).
    pub delay_from_input: f64,
    /// 10–90 % far-end transition time (s).
    pub slew: f64,
    /// Far-end overshoot above the supply (V).
    pub overshoot: f64,
}

impl FarEndResponse {
    /// Simulates the far-end response of `line` (terminated by `c_load`)
    /// driven by the modelled waveform — the one-branch special case of
    /// [`TreeFarEndResponse::from_model`].
    ///
    /// # Errors
    /// Propagates simulation errors and reports missing waveform crossings.
    pub fn from_model(
        model: &DriverOutputModel,
        line: &RlcLine,
        c_load: f64,
        options: &FarEndOptions,
    ) -> Result<Self, CeffError> {
        let tree = RlcTree::single_line(*line, c_load);
        let mut response = TreeFarEndResponse::from_model(model, &tree, options)?;
        let sink = response.sinks.pop().expect("single-line tree has one sink");
        Ok(FarEndResponse {
            delay_from_input: sink.delay_from_input,
            slew: sink.slew,
            overshoot: sink.overshoot,
            far_waveform: sink.waveform,
            near_waveform: response.near_waveform,
        })
    }
}

/// The measured response at one named sink of a tree net.
#[derive(Debug, Clone)]
pub struct SinkResponse {
    /// The sink (pin) name.
    pub sink: String,
    /// Voltage waveform at the sink.
    pub waveform: Waveform,
    /// 50 % delay of the sink measured from the input's 50 % crossing (s).
    pub delay_from_input: f64,
    /// 10–90 % sink transition time (s).
    pub slew: f64,
    /// Sink overshoot above the supply (V).
    pub overshoot: f64,
}

/// Per-sink far-end responses of an [`RlcTree`] driven by a modelled driver
/// waveform — the topology-generic form of [`FarEndResponse`].
#[derive(Debug, Clone)]
pub struct TreeFarEndResponse {
    /// Near-end (source) waveform actually applied.
    pub near_waveform: Waveform,
    /// One response per declared sink, in branch order.
    pub sinks: Vec<SinkResponse>,
}

impl TreeFarEndResponse {
    /// Simulates the modelled waveform driving `tree` and measures every
    /// declared sink.
    ///
    /// # Errors
    /// Returns [`CeffError::InvalidCase`] for a tree without sinks, and
    /// propagates simulation errors and missing waveform crossings.
    pub fn from_model(
        model: &DriverOutputModel,
        tree: &RlcTree,
        options: &FarEndOptions,
    ) -> Result<Self, CeffError> {
        if tree.num_sinks() == 0 {
            return Err(CeffError::InvalidCase(
                "far-end propagation needs a tree with at least one named sink".into(),
            ));
        }
        let t_stop = model.end_time() + options.settle_time + 4.0 * tree.total_time_of_flight();
        let source = model.to_source(t_stop);

        let mut ckt = Circuit::new();
        let near = ckt.node("out");
        ckt.add_vsource("VDRV", near, Circuit::GROUND, source);
        ckt.set_initial_condition(near, 0.0);
        let sink_nodes = tree.add_to_circuit(&mut ckt, near, options.segments, 0.0, "net");

        let result = TransientAnalysis::new(TransientOptions::try_new(options.time_step, t_stop)?)
            .run(&ckt)?;
        let vdd = model.vdd;
        let mut sinks = Vec::with_capacity(sink_nodes.len());
        for sink in sink_nodes {
            let waveform = result.waveform(sink.node);
            let t50 = waveform.crossing_fraction(0.5, vdd, true).ok_or_else(|| {
                CeffError::Measurement(format!("sink {} never crossed 50%", sink.name))
            })?;
            let slew = waveform.slew_10_90(vdd, true).ok_or_else(|| {
                CeffError::Measurement(format!("sink {} never completed 10-90%", sink.name))
            })?;
            sinks.push(SinkResponse {
                overshoot: waveform.overshoot(vdd),
                delay_from_input: t50 - model.input_t50,
                slew,
                waveform,
                sink: sink.name,
            });
        }
        Ok(TreeFarEndResponse {
            near_waveform: result.waveform(near),
            sinks,
        })
    }

    /// The response of a named sink.
    pub fn sink(&self, name: &str) -> Option<&SinkResponse> {
        self.sinks.iter().find(|s| s.sink == name)
    }

    /// The slowest sink (largest 50 % delay) — the path a signoff flow would
    /// report.
    pub fn critical_sink(&self) -> &SinkResponse {
        self.sinks
            .iter()
            .max_by(|a, b| a.delay_from_input.total_cmp(&b.delay_from_input))
            .expect("construction guarantees at least one sink")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{AnalysisCase, DriverOutputModeler, ModelingConfig};
    use rlc_charlib::{DriverCell, TimingTable};
    use rlc_numeric::units::{ff, mm, nh, pf};
    use rlc_spice::testbench::InverterSpec;

    fn synthetic_cell() -> DriverCell {
        let slews = vec![ps(50.0), ps(100.0), ps(200.0)];
        let loads = vec![ff(50.0), ff(200.0), ff(500.0), pf(1.0), pf(2.0)];
        let transition: Vec<Vec<f64>> = slews
            .iter()
            .map(|&s| {
                loads
                    .iter()
                    .map(|&c| ps(10.0) + 0.1 * s + (c / 1e-12) * ps(160.0))
                    .collect()
            })
            .collect();
        let delay: Vec<Vec<f64>> = slews
            .iter()
            .map(|&s| {
                loads
                    .iter()
                    .map(|&c| ps(5.0) + 0.2 * s + (c / 1e-12) * ps(53.0))
                    .collect()
            })
            .collect();
        DriverCell::from_parts(
            InverterSpec::sized_018(75.0),
            TimingTable::new(slews, loads, delay, transition),
            70.0,
        )
    }

    #[test]
    fn far_end_lags_near_end_and_completes() {
        let cell = synthetic_cell();
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let case = AnalysisCase::try_new(&cell, &line, ff(10.0), ps(100.0)).unwrap();
        let config = ModelingConfig {
            extract_rs_per_case: false,
            ..ModelingConfig::default()
        };
        let model = DriverOutputModeler::new(config).model(&case).unwrap();
        let options = FarEndOptions {
            segments: 16,
            time_step: ps(1.0),
            ..FarEndOptions::default()
        };
        let far = FarEndResponse::from_model(&model, &line, ff(10.0), &options).unwrap();
        assert!(far.far_waveform.last_value() > 0.95 * model.vdd);
        // The far end switches later than the modelled near-end delay.
        assert!(far.delay_from_input > model.delay());
        assert!(far.slew > 0.0);
        // Ramp drive of a low-loss line overshoots at the open far end.
        assert!(far.overshoot >= 0.0);
        assert!(far.near_waveform.last_value() > 0.95 * model.vdd);
    }

    #[test]
    fn tree_far_end_measures_every_sink() {
        // RC-dominated branches so the Elmore ordering of the two sinks is
        // unambiguous (inductive stubs can ring their 50% crossings closer).
        let cell = synthetic_cell();
        let trunk = RlcLine::new(150.0, nh(0.2), pf(0.6), mm(2.5));
        let near_stub = RlcLine::new(40.0, nh(0.05), pf(0.1), mm(0.5));
        let far_stub = RlcLine::new(400.0, nh(0.15), pf(0.6), mm(1.5));
        let mut tree = rlc_interconnect::RlcTree::new();
        let t = tree.add_branch(None, trunk);
        let a = tree.add_branch(Some(t), near_stub);
        let b = tree.add_branch(Some(t), far_stub);
        tree.set_sink(a, "rx_near", ff(10.0));
        tree.set_sink(b, "rx_far", ff(40.0));

        // Reuse the single-line flow for the driver model (the tree reduces
        // through the moments crate in the facade; here any model works).
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let case = AnalysisCase::try_new(&cell, &line, ff(10.0), ps(100.0)).unwrap();
        let config = ModelingConfig {
            extract_rs_per_case: false,
            ..ModelingConfig::default()
        };
        let model = DriverOutputModeler::new(config).model(&case).unwrap();
        let options = FarEndOptions {
            segments: 10,
            time_step: ps(1.0),
            ..FarEndOptions::default()
        };
        let response = TreeFarEndResponse::from_model(&model, &tree, &options).unwrap();
        assert_eq!(response.sinks.len(), 2);
        assert!(response.sink("rx_near").is_some());
        assert!(response.sink("nope").is_none());
        // Both sinks complete; the longer path is the critical one.
        for sink in &response.sinks {
            assert!(sink.waveform.last_value() > 0.95 * model.vdd);
            assert!(sink.delay_from_input > 0.0 && sink.slew > 0.0);
        }
        let near_delay = response.sink("rx_near").unwrap().delay_from_input;
        let far_delay = response.sink("rx_far").unwrap().delay_from_input;
        assert!(far_delay > near_delay);
        assert_eq!(response.critical_sink().sink, "rx_far");
    }

    #[test]
    fn sinkless_tree_is_an_invalid_case() {
        let cell = synthetic_cell();
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let case = AnalysisCase::try_new(&cell, &line, ff(10.0), ps(100.0)).unwrap();
        let config = ModelingConfig {
            extract_rs_per_case: false,
            ..ModelingConfig::default()
        };
        let model = DriverOutputModeler::new(config).model(&case).unwrap();
        let mut tree = rlc_interconnect::RlcTree::new();
        tree.add_branch(None, line);
        assert!(matches!(
            TreeFarEndResponse::from_model(&model, &tree, &FarEndOptions::default()),
            Err(crate::CeffError::InvalidCase(_))
        ));
    }
}
