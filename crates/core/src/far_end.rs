//! Far-end response computation.
//!
//! Step 5 of the paper's flow: "Replace the driver with a voltage source
//! consisting of two ramps and compute the far-end response of the
//! interconnect." The modelled waveform becomes an ideal PWL source driving
//! the same segmented RLC line, and the far-end delay and slew are measured
//! from that (purely linear, fast) simulation.

use rlc_interconnect::RlcLine;
use rlc_numeric::units::ps;
use rlc_spice::testbench::pwl_source_with_rlc_line;
use rlc_spice::transient::{TransientAnalysis, TransientOptions};
use rlc_spice::Waveform;

use crate::flow::DriverOutputModel;
use crate::CeffError;

/// Options for the far-end propagation simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FarEndOptions {
    /// Number of ladder segments (default 40).
    pub segments: usize,
    /// Transient time step (default 0.5 ps).
    pub time_step: f64,
    /// Extra settling time added after the modelled transition completes
    /// (default 500 ps).
    pub settle_time: f64,
}

impl Default for FarEndOptions {
    fn default() -> Self {
        FarEndOptions {
            segments: 40,
            time_step: ps(0.5),
            settle_time: ps(500.0),
        }
    }
}

/// The far-end response produced by driving the line with a modelled
/// driver-output waveform.
#[derive(Debug, Clone)]
pub struct FarEndResponse {
    /// Far-end voltage waveform.
    pub far_waveform: Waveform,
    /// Near-end (source) waveform actually applied.
    pub near_waveform: Waveform,
    /// 50 % delay of the far end measured from the input's 50 % crossing (s).
    pub delay_from_input: f64,
    /// 10–90 % far-end transition time (s).
    pub slew: f64,
    /// Far-end overshoot above the supply (V).
    pub overshoot: f64,
}

impl FarEndResponse {
    /// Simulates the far-end response of `line` (terminated by `c_load`)
    /// driven by the modelled waveform.
    ///
    /// # Errors
    /// Propagates simulation errors and reports missing waveform crossings.
    pub fn from_model(
        model: &DriverOutputModel,
        line: &RlcLine,
        c_load: f64,
        options: &FarEndOptions,
    ) -> Result<Self, CeffError> {
        let t_stop = model.end_time() + options.settle_time + 4.0 * line.time_of_flight();
        let source = model.to_source(t_stop);
        let (ckt, nodes) = pwl_source_with_rlc_line(
            source,
            0.0,
            line.resistance(),
            line.inductance(),
            line.capacitance(),
            options.segments,
            c_load,
        );
        let result = TransientAnalysis::new(TransientOptions::try_new(options.time_step, t_stop)?)
            .run(&ckt)?;
        let far = result.waveform(nodes.far_end);
        let near = result.waveform(nodes.output);
        let vdd = model.vdd;
        let t50 = far
            .crossing_fraction(0.5, vdd, true)
            .ok_or_else(|| CeffError::Measurement("far end never crossed 50%".into()))?;
        let slew = far
            .slew_10_90(vdd, true)
            .ok_or_else(|| CeffError::Measurement("far end never completed 10-90%".into()))?;
        Ok(FarEndResponse {
            overshoot: far.overshoot(vdd),
            delay_from_input: t50 - model.input_t50,
            slew,
            far_waveform: far,
            near_waveform: near,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{AnalysisCase, DriverOutputModeler, ModelingConfig};
    use rlc_charlib::{DriverCell, TimingTable};
    use rlc_numeric::units::{ff, mm, nh, pf};
    use rlc_spice::testbench::InverterSpec;

    fn synthetic_cell() -> DriverCell {
        let slews = vec![ps(50.0), ps(100.0), ps(200.0)];
        let loads = vec![ff(50.0), ff(200.0), ff(500.0), pf(1.0), pf(2.0)];
        let transition: Vec<Vec<f64>> = slews
            .iter()
            .map(|&s| {
                loads
                    .iter()
                    .map(|&c| ps(10.0) + 0.1 * s + (c / 1e-12) * ps(160.0))
                    .collect()
            })
            .collect();
        let delay: Vec<Vec<f64>> = slews
            .iter()
            .map(|&s| {
                loads
                    .iter()
                    .map(|&c| ps(5.0) + 0.2 * s + (c / 1e-12) * ps(53.0))
                    .collect()
            })
            .collect();
        DriverCell::from_parts(
            InverterSpec::sized_018(75.0),
            TimingTable::new(slews, loads, delay, transition),
            70.0,
        )
    }

    #[test]
    fn far_end_lags_near_end_and_completes() {
        let cell = synthetic_cell();
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let case = AnalysisCase::try_new(&cell, &line, ff(10.0), ps(100.0)).unwrap();
        let config = ModelingConfig {
            extract_rs_per_case: false,
            ..ModelingConfig::default()
        };
        let model = DriverOutputModeler::new(config).model(&case).unwrap();
        let options = FarEndOptions {
            segments: 16,
            time_step: ps(1.0),
            ..FarEndOptions::default()
        };
        let far = FarEndResponse::from_model(&model, &line, ff(10.0), &options).unwrap();
        assert!(far.far_waveform.last_value() > 0.95 * model.vdd);
        // The far end switches later than the modelled near-end delay.
        assert!(far.delay_from_input > model.delay());
        assert!(far.slew > 0.0);
        // Ramp drive of a low-loss line overshoots at the open far end.
        assert!(far.overshoot >= 0.0);
        assert!(far.near_waveform.last_value() > 0.95 * model.vdd);
    }
}
