//! Plateau correction of the second ramp (Equation 8 of the paper).
//!
//! Between the initial step and the arrival of the first reflection the
//! driver output is (nearly) flat for a duration `2 tf − Tr1` — the round
//! trip time of flight minus the part already spent ramping. No charge flows
//! during the plateau, so `Ceff2` does not see it; the paper accounts for the
//! extra delay by stretching the second ramp:
//!
//! ```text
//! Tr2_new = Tr2 + (2 tf − Tr1) / (1 − f)
//! ```
//!
//! The division by `(1 − f)` appears because only the `(1 − f)` fraction of
//! the second ramp is actually traversed, so shifting its end point by the
//! plateau duration requires stretching the full-swing time by the larger
//! amount.

/// Duration of the reflection plateau, `max(0, 2 tf − tr1)`.
///
/// # Panics
/// Panics if `time_of_flight` or `tr1` is negative.
pub fn plateau_duration(time_of_flight: f64, tr1: f64) -> f64 {
    assert!(time_of_flight >= 0.0 && tr1 >= 0.0);
    (2.0 * time_of_flight - tr1).max(0.0)
}

/// The plateau-corrected second-ramp duration `Tr2_new` (Equation 8). When
/// the initial ramp is slower than the round-trip time of flight there is no
/// plateau and `tr2` is returned unchanged.
///
/// # Panics
/// Panics if `tr2 <= 0`, `f` is not in `(0, 1)`, or the other arguments are
/// negative.
pub fn plateau_corrected_tr2(tr2: f64, tr1: f64, time_of_flight: f64, f: f64) -> f64 {
    assert!(tr2 > 0.0, "second ramp duration must be positive");
    assert!(f > 0.0 && f < 1.0, "breakpoint fraction must be in (0, 1)");
    tr2 + plateau_duration(time_of_flight, tr1) / (1.0 - f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_numeric::approx_eq;
    use rlc_numeric::units::ps;

    #[test]
    fn no_plateau_when_ramp_is_slower_than_round_trip() {
        assert_eq!(plateau_duration(ps(40.0), ps(100.0)), 0.0);
        let tr2 = plateau_corrected_tr2(ps(200.0), ps(100.0), ps(40.0), 0.5);
        assert!(approx_eq(tr2, ps(200.0), 1e-12));
    }

    #[test]
    fn plateau_extends_the_second_ramp() {
        // tf = 75 ps, tr1 = 60 ps -> plateau 90 ps; f = 0.5 -> stretch 180 ps.
        let tr2 = plateau_corrected_tr2(ps(150.0), ps(60.0), ps(75.0), 0.5);
        assert!(approx_eq(tr2, ps(150.0) + ps(180.0), 1e-9));
    }

    #[test]
    fn higher_breakpoints_stretch_more() {
        let low_f = plateau_corrected_tr2(ps(150.0), ps(60.0), ps(75.0), 0.3);
        let high_f = plateau_corrected_tr2(ps(150.0), ps(60.0), ps(75.0), 0.7);
        assert!(high_f > low_f);
    }

    #[test]
    fn plateau_duration_matches_paper_expression() {
        assert!(approx_eq(
            plateau_duration(ps(75.0), ps(60.0)),
            ps(90.0),
            1e-12
        ));
        assert_eq!(plateau_duration(0.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1)")]
    fn f_of_one_rejected() {
        let _ = plateau_corrected_tr2(ps(100.0), ps(50.0), ps(60.0), 1.0);
    }
}
