//! Golden-simulation validation: run the full nonlinear testbench (inverter
//! driving the segmented RLC line) with `rlc-spice`, measure delay and slew
//! at the near and far ends, and compare against the model. This is the
//! machinery behind the paper's Table 1 and Figure 7.

use rlc_interconnect::RlcLine;
use rlc_numeric::relative_error;
use rlc_numeric::units::ps;
use rlc_spice::testbench::{inverter_with_rlc_line, OutputTransition};
use rlc_spice::transient::{TransientAnalysis, TransientOptions};
use rlc_spice::Waveform;

use crate::far_end::{FarEndOptions, FarEndResponse};
use crate::flow::{AnalysisCase, DriverOutputModel, DriverOutputModeler};
use crate::CeffError;

/// Options for the golden simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoldenOptions {
    /// Number of ladder segments (default 40).
    pub segments: usize,
    /// Transient time step (default 0.5 ps).
    pub time_step: f64,
    /// Hard cap on the simulated window (default 3 ns).
    pub max_stop_time: f64,
}

impl Default for GoldenOptions {
    fn default() -> Self {
        GoldenOptions {
            segments: 40,
            time_step: ps(0.5),
            max_stop_time: 3e-9,
        }
    }
}

impl GoldenOptions {
    /// A cheaper configuration for debug-build unit tests.
    pub fn coarse_for_tests() -> Self {
        GoldenOptions {
            segments: 14,
            time_step: ps(1.0),
            max_stop_time: 2.5e-9,
        }
    }
}

/// The waveforms produced by the golden simulation of one case.
#[derive(Debug, Clone)]
pub struct GoldenWaveforms {
    /// Input ramp at the driver's gate.
    pub input: Waveform,
    /// Driver output (near end of the line).
    pub near: Waveform,
    /// Far end of the line.
    pub far: Waveform,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Absolute time of the input's 50 % crossing (s).
    pub input_t50: f64,
}

impl GoldenWaveforms {
    /// Simulates the golden testbench for a case.
    ///
    /// # Errors
    /// Propagates simulation errors and missing measurements.
    pub fn simulate(case: &AnalysisCase<'_>, options: &GoldenOptions) -> Result<Self, CeffError> {
        let line = case.line;
        let spec = case.cell.spec();
        // Simulation window: input ramp, several round trips, and the RC
        // settling of the driver against the full line capacitance.
        let rs_estimate = 3.0e-3 / spec.nmos_width;
        let settle = 8.0 * (rs_estimate + line.resistance()) * (line.capacitance() + case.c_load);
        let t_stop = (case.input_delay
            + case.input_slew
            + 10.0 * line.time_of_flight()
            + settle
            + ps(200.0))
        .min(options.max_stop_time);

        let (ckt, nodes) = inverter_with_rlc_line(
            spec,
            case.input_slew,
            case.input_delay,
            line.resistance(),
            line.inductance(),
            line.capacitance(),
            options.segments,
            case.c_load,
            OutputTransition::Rising,
        );
        let result = TransientAnalysis::new(TransientOptions::try_new(options.time_step, t_stop)?)
            .run(&ckt)?;
        let input = result.waveform(nodes.input);
        let near = result.waveform(nodes.output);
        let far = result.waveform(nodes.far_end);
        let vdd = spec.vdd;
        let input_t50 = input
            .crossing_fraction(0.5, vdd, false)
            .ok_or_else(|| CeffError::Measurement("input never crossed 50%".into()))?;
        Ok(GoldenWaveforms {
            input,
            near,
            far,
            vdd,
            input_t50,
        })
    }

    /// Near-end 50 % delay from the input's 50 % crossing.
    ///
    /// # Errors
    /// Fails if the near-end waveform never crosses 50 %.
    pub fn near_delay(&self) -> Result<f64, CeffError> {
        let t = self
            .near
            .crossing_fraction(0.5, self.vdd, true)
            .ok_or_else(|| CeffError::Measurement("near end never crossed 50%".into()))?;
        Ok(t - self.input_t50)
    }

    /// Near-end 10–90 % transition time.
    ///
    /// # Errors
    /// Fails if the near-end waveform never completes the transition.
    pub fn near_slew(&self) -> Result<f64, CeffError> {
        self.near
            .slew_10_90(self.vdd, true)
            .ok_or_else(|| CeffError::Measurement("near end never completed 10-90%".into()))
    }

    /// Far-end 50 % delay from the input's 50 % crossing.
    ///
    /// # Errors
    /// Fails if the far-end waveform never crosses 50 %.
    pub fn far_delay(&self) -> Result<f64, CeffError> {
        let t = self
            .far
            .crossing_fraction(0.5, self.vdd, true)
            .ok_or_else(|| CeffError::Measurement("far end never crossed 50%".into()))?;
        Ok(t - self.input_t50)
    }

    /// Far-end 10–90 % transition time.
    ///
    /// # Errors
    /// Fails if the far-end waveform never completes the transition.
    pub fn far_slew(&self) -> Result<f64, CeffError> {
        self.far
            .slew_10_90(self.vdd, true)
            .ok_or_else(|| CeffError::Measurement("far end never completed 10-90%".into()))
    }
}

/// Model-vs-golden comparison of one case (one row of Table 1 / one point of
/// Figure 7).
#[derive(Debug, Clone)]
pub struct CaseComparison {
    /// Golden (simulated) near-end delay (s).
    pub sim_delay: f64,
    /// Golden near-end slew (s).
    pub sim_slew: f64,
    /// Modelled near-end delay (s).
    pub model_delay: f64,
    /// Modelled near-end slew (s).
    pub model_slew: f64,
    /// Signed relative delay error of the model.
    pub delay_error: f64,
    /// Signed relative slew error of the model.
    pub slew_error: f64,
    /// Whether the two-ramp model was used.
    pub used_two_ramp: bool,
    /// The model itself (for waveform-level inspection).
    pub model: DriverOutputModel,
}

impl CaseComparison {
    /// Runs the golden simulation and the modelling flow for a case and
    /// compares their near-end delay and slew.
    ///
    /// # Errors
    /// Propagates simulation, fit and measurement errors.
    pub fn evaluate(
        case: &AnalysisCase<'_>,
        modeler: &DriverOutputModeler,
        options: &GoldenOptions,
    ) -> Result<Self, CeffError> {
        let golden = GoldenWaveforms::simulate(case, options)?;
        let model = modeler.model(case)?;
        Self::against_golden(&golden, model)
    }

    /// Compares an already computed model against already simulated golden
    /// waveforms (lets callers reuse the expensive golden run for several
    /// model variants, e.g. the one-ramp baseline).
    ///
    /// # Errors
    /// Propagates measurement errors.
    pub fn against_golden(
        golden: &GoldenWaveforms,
        model: DriverOutputModel,
    ) -> Result<Self, CeffError> {
        let sim_delay = golden.near_delay()?;
        let sim_slew = golden.near_slew()?;
        let model_delay = model.delay();
        let model_slew = model.slew();
        Ok(CaseComparison {
            sim_delay,
            sim_slew,
            model_delay,
            model_slew,
            delay_error: relative_error(model_delay, sim_delay),
            slew_error: relative_error(model_slew, sim_slew),
            used_two_ramp: model.is_two_ramp(),
            model,
        })
    }

    /// Far-end comparison: golden far-end delay/slew vs. the far end obtained
    /// by driving the line with the modelled waveform.
    ///
    /// # Errors
    /// Propagates simulation and measurement errors.
    pub fn far_end(
        &self,
        golden: &GoldenWaveforms,
        line: &RlcLine,
        c_load: f64,
        options: &FarEndOptions,
    ) -> Result<FarEndComparison, CeffError> {
        let model_far = FarEndResponse::from_model(&self.model, line, c_load, options)?;
        let sim_delay = golden.far_delay()?;
        let sim_slew = golden.far_slew()?;
        Ok(FarEndComparison {
            sim_delay,
            sim_slew,
            model_delay: model_far.delay_from_input,
            model_slew: model_far.slew,
            delay_error: relative_error(model_far.delay_from_input, sim_delay),
            slew_error: relative_error(model_far.slew, sim_slew),
        })
    }
}

/// Far-end delay/slew comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FarEndComparison {
    /// Golden far-end delay (s).
    pub sim_delay: f64,
    /// Golden far-end slew (s).
    pub sim_slew: f64,
    /// Model-driven far-end delay (s).
    pub model_delay: f64,
    /// Model-driven far-end slew (s).
    pub model_slew: f64,
    /// Signed relative delay error.
    pub delay_error: f64,
    /// Signed relative slew error.
    pub slew_error: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::ModelingConfig;
    use rlc_charlib::{CharacterizationGrid, DriverCell};
    use rlc_numeric::units::{ff, mm, nh, pf};

    /// End-to-end check on the paper's flagship case (5 mm / 1.6 µm, 75X):
    /// the golden simulation shows the transmission-line step and the
    /// two-ramp model tracks its delay and slew far better than order-of-
    /// magnitude. (Tight error-band checks run in release mode via the
    /// integration tests and the experiment binaries.)
    #[test]
    fn two_ramp_model_tracks_golden_simulation() {
        let cell =
            DriverCell::characterize(75.0, &CharacterizationGrid::coarse_for_tests()).unwrap();
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let case = AnalysisCase::try_new(&cell, &line, ff(10.0), ps(100.0)).unwrap();
        let modeler = DriverOutputModeler::new(ModelingConfig {
            extract_rs_per_case: false,
            ..ModelingConfig::default()
        });
        let options = GoldenOptions::coarse_for_tests();
        let cmp = CaseComparison::evaluate(&case, &modeler, &options).unwrap();
        assert!(cmp.sim_delay > ps(10.0) && cmp.sim_delay < ps(120.0));
        assert!(cmp.sim_slew > ps(60.0) && cmp.sim_slew < ps(600.0));
        assert!(
            cmp.delay_error.abs() < 0.5,
            "delay error {:.1}% (sim {:.1} ps, model {:.1} ps)",
            cmp.delay_error * 100.0,
            cmp.sim_delay * 1e12,
            cmp.model_delay * 1e12
        );
        assert!(
            cmp.slew_error.abs() < 0.6,
            "slew error {:.1}% (sim {:.1} ps, model {:.1} ps)",
            cmp.slew_error * 100.0,
            cmp.sim_slew * 1e12,
            cmp.model_slew * 1e12
        );
    }

    /// The golden near-end waveform of an inductive case must show the
    /// initial-step-then-plateau shape the paper's Figure 1 describes: it
    /// reaches ~f*VDD quickly and then stalls before completing.
    #[test]
    fn golden_waveform_shows_the_transmission_line_step() {
        let cell =
            DriverCell::characterize(75.0, &CharacterizationGrid::coarse_for_tests()).unwrap();
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let case = AnalysisCase::try_new(&cell, &line, ff(10.0), ps(100.0)).unwrap();
        let golden = GoldenWaveforms::simulate(&case, &GoldenOptions::coarse_for_tests()).unwrap();
        let vdd = golden.vdd;
        let t40 = golden.near.crossing_fraction(0.4, vdd, true).unwrap();
        let t90 = golden.near.crossing_fraction(0.9, vdd, true).unwrap();
        // Reaching 40 % is fast (initial step), but reaching 90 % has to wait
        // for at least one reflection: the gap must exceed the round trip.
        assert!(
            t90 - t40 > 1.5 * line.time_of_flight(),
            "t40 = {:.1} ps, t90 = {:.1} ps",
            t40 * 1e12,
            t90 * 1e12
        );
        assert!(golden.near_delay().unwrap() > 0.0);
        assert!(golden.far_delay().unwrap() > golden.near_delay().unwrap());
        assert!(golden.far_slew().unwrap() > 0.0);
    }
}
