//! Charge-matching effective-capacitance formulas (Section 4 of the paper).
//!
//! The load is the fitted rational admittance
//! `Y(s) = (a1 s + a2 s² + a3 s³)/(1 + b1 s + b2 s²)` with poles `s1`, `s2`
//! (the roots of `b2 s² + b1 s + 1 = 0`). Driving it with a saturated ramp of
//! slope `VDD/Tr` produces the current
//!
//! ```text
//! I(t) = (VDD/Tr) · [ a1 + H1 e^{s1 t} + H2 e^{s2 t} ],
//! H_i = (a1 + a2 s_i + a3 s_i²) / (b2 s_i (s_i − s_j))
//! ```
//!
//! and the effective capacitance over an interval is the delivered charge
//! divided by the voltage swing over that interval. The paper writes the real
//! and complex-conjugate pole cases separately (its Equations 4–7); here a
//! single complex-valued implementation covers both, and the explicit
//! real-trigonometric forms are provided as well and cross-checked in tests.

use rlc_moments::{PolePair, RationalAdmittance};
use rlc_numeric::Complex;

/// Which part of the output transition the charge is equated over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChargeWindow {
    /// From the start of the transition up to the fraction `f` of the supply
    /// (`f = 1` reproduces the classic "equate charge over the whole
    /// transition"; `f = 0.5` reproduces "equate charge up to the 50 % point",
    /// the two single-Ceff baselines of the paper's Figure 3).
    FirstRamp {
        /// Breakpoint fraction (0 < f <= 1).
        f: f64,
    },
    /// The second-ramp interval `[f·Tr1, f·Tr1 + (1−f)·Tr2]` of the two-ramp
    /// waveform.
    SecondRamp {
        /// Breakpoint fraction (0 < f < 1).
        f: f64,
        /// Full-swing duration of the first ramp (s).
        tr1: f64,
    },
}

/// The ramp response of a fitted admittance, classified by pole count. The
/// general fit of a distributed line has two poles; the facade's exact
/// lumped-capacitor and RC-pi admittances have zero and one pole
/// respectively, and their charge matching uses the same structure with
/// fewer exponential modes.
#[derive(Debug, Clone, Copy)]
enum RampResponse {
    /// `Y(s) = a1 s` (a lumped capacitor): the current of a ramp is
    /// constant, nothing is shielded. `a2 = a3 = 0` is enforced by the fit
    /// constructors for pole-free admittances.
    Static,
    /// One pole at `s1 = -1/b1` with real residue factor `h1`:
    /// `I(t) = (VDD/Tr)(a1 + h1 e^{s1 t})`.
    OnePole {
        /// The single (real, negative for passive loads) pole.
        s1: f64,
        /// Residue factor of the exponential mode.
        h1: f64,
    },
    /// The general two-pole case of the paper (real or complex pair).
    TwoPole {
        /// First pole.
        s1: Complex,
        /// Second pole.
        s2: Complex,
        /// Residue factor of the first mode.
        h1: Complex,
        /// Residue factor of the second mode.
        h2: Complex,
    },
}

fn ramp_response(fit: &RationalAdmittance) -> RampResponse {
    match fit.pole_count() {
        0 => RampResponse::Static,
        1 => {
            // Y(s) = (a1 s + a2 s²)/(1 + b1 s) driven by a unit-slope ramp:
            // partial fractions give I(t)/(VDD/Tr) = a1 + H e^{-t/b1} with
            // H = (a2 - a1 b1)/b1. (a3 = 0 is enforced by the fit
            // constructors for single-pole admittances.)
            RampResponse::OnePole {
                s1: -1.0 / fit.b1,
                h1: (fit.a2 - fit.a1 * fit.b1) / fit.b1,
            }
        }
        _ => {
            let (s1, s2, h1, h2) = residues(fit);
            RampResponse::TwoPole { s1, s2, h1, h2 }
        }
    }
}

/// `(e^{s·t1} − e^{s·t0}) / s` for a real pole.
fn real_exp_increment_over_s(s: f64, t0: f64, t1: f64) -> f64 {
    ((s * t1).exp() - (s * t0).exp()) / s
}

/// Residue factors `H_i` of the ramp-response partial fraction expansion.
fn residues(fit: &RationalAdmittance) -> (Complex, Complex, Complex, Complex) {
    let (s1, s2) = fit.poles().as_complex();
    // Guard against a (numerically) repeated root: split the poles slightly.
    let (s1, s2) = if (s1 - s2).abs() < 1e-9 * s1.abs().max(s2.abs()) {
        let bump = Complex::real(1e-6 * s1.abs().max(1.0));
        (s1 + bump, s2 - bump)
    } else {
        (s1, s2)
    };
    let num = |s: Complex| Complex::real(fit.a1) + s * (Complex::real(fit.a2) + s * fit.a3);
    let h1 = num(s1) / (Complex::real(fit.b2) * s1 * (s1 - s2));
    let h2 = num(s2) / (Complex::real(fit.b2) * s2 * (s2 - s1));
    (s1, s2, h1, h2)
}

/// `(e^{s·t1} − e^{s·t0}) / s` evaluated stably.
fn exp_increment_over_s(s: Complex, t0: f64, t1: f64) -> Complex {
    ((s * t1).exp() - (s * t0).exp()) / s
}

/// Effective capacitance of the first ramp (the paper's `Ceff1`, Equations
/// 4–5): the capacitance whose charge over `[0, f·Tr1]` equals the charge
/// delivered into the fitted load by a ramp of full-swing duration `tr1`.
///
/// With `f = 1` this is the classic single effective capacitance obtained by
/// equating charge over the entire transition; with `f = 0.5` it is the
/// "equate charge up to the 50 % point" variant.
///
/// # Panics
/// Panics if `tr1 <= 0` or `f` is outside `(0, 1]`.
pub fn ceff_first_ramp(fit: &RationalAdmittance, tr1: f64, f: f64) -> f64 {
    assert!(tr1 > 0.0, "ramp duration must be positive");
    assert!(f > 0.0 && f <= 1.0, "breakpoint fraction must be in (0, 1]");
    let t_end = f * tr1;
    // Q / (f * VDD) with Q = (VDD/Tr1) [ a1 f Tr1 + Σ H_i (e^{s_i f Tr1} − 1)/s_i ].
    match ramp_response(fit) {
        RampResponse::Static => fit.a1,
        RampResponse::OnePole { s1, h1 } => {
            fit.a1 + h1 * real_exp_increment_over_s(s1, 0.0, t_end) / t_end
        }
        RampResponse::TwoPole { s1, s2, h1, h2 } => {
            let sum = h1 * exp_increment_over_s(s1, 0.0, t_end)
                + h2 * exp_increment_over_s(s2, 0.0, t_end);
            fit.a1 + sum.re / t_end
        }
    }
}

/// Effective capacitance of the second ramp (the paper's `Ceff2`, Equations
/// 6–7): the capacitance whose charge over `[f·Tr1, f·Tr1 + (1−f)·Tr2]`
/// equals the charge delivered into the fitted load by the second-ramp
/// voltage `V(t) = VDD·t/Tr2 + k·f·VDD`, `k = 1 − Tr1/Tr2`.
///
/// # Panics
/// Panics if `tr1 <= 0`, `tr2 <= 0`, or `f` is outside `(0, 1)`.
pub fn ceff_second_ramp(fit: &RationalAdmittance, tr1: f64, tr2: f64, f: f64) -> f64 {
    assert!(tr1 > 0.0 && tr2 > 0.0, "ramp durations must be positive");
    assert!(f > 0.0 && f < 1.0, "breakpoint fraction must be in (0, 1)");
    let k = 1.0 - tr1 / tr2;
    let t0 = f * tr1;
    let t1 = f * tr1 + (1.0 - f) * tr2;
    // I2(t) = (VDD/Tr2) a1 + Σ H_i (VDD/Tr2 + k f VDD s_i) e^{s_i t};
    // Ceff2 = Q2 / ((1 − f) VDD).
    match ramp_response(fit) {
        RampResponse::Static => fit.a1,
        RampResponse::OnePole { s1, h1 } => {
            let weight = 1.0 / tr2 + s1 * k * f;
            fit.a1 + h1 * weight * real_exp_increment_over_s(s1, t0, t1) / (1.0 - f)
        }
        RampResponse::TwoPole { s1, s2, h1, h2 } => {
            let weight = |s: Complex| Complex::real(1.0 / tr2) + s * (k * f);
            let sum = h1 * weight(s1) * exp_increment_over_s(s1, t0, t1)
                + h2 * weight(s2) * exp_increment_over_s(s2, t0, t1);
            fit.a1 + sum.re / (1.0 - f)
        }
    }
}

/// Effective capacitance for an arbitrary charge window (dispatch helper used
/// by the iteration module).
pub fn ceff_for_window(fit: &RationalAdmittance, window: ChargeWindow, tr: f64) -> f64 {
    match window {
        ChargeWindow::FirstRamp { f } => ceff_first_ramp(fit, tr, f),
        ChargeWindow::SecondRamp { f, tr1 } => ceff_second_ramp(fit, tr1, tr, f),
    }
}

/// Current delivered into the fitted load by a saturated ramp of full-swing
/// duration `tr` and amplitude `vdd`, at time `t` (valid for `0 ≤ t ≤ tr`).
/// Used by diagnostics and by the closed-form-vs-quadrature tests.
pub fn ramp_current(fit: &RationalAdmittance, vdd: f64, tr: f64, t: f64) -> f64 {
    assert!(tr > 0.0);
    match ramp_response(fit) {
        RampResponse::Static => vdd / tr * fit.a1,
        RampResponse::OnePole { s1, h1 } => vdd / tr * (fit.a1 + h1 * (s1 * t).exp()),
        RampResponse::TwoPole { s1, s2, h1, h2 } => {
            let val = Complex::real(fit.a1) + h1 * (s1 * t).exp() + h2 * (s2 * t).exp();
            vdd / tr * val.re
        }
    }
}

/// The paper's explicit real-pole form of `Ceff1` (Equation 4), kept for
/// fidelity and cross-checked against the complex implementation.
///
/// # Panics
/// Panics if the fitted poles are not real, `tr1 <= 0`, or `f` outside
/// `(0, 1]`.
pub fn ceff_first_ramp_real_poles(fit: &RationalAdmittance, tr1: f64, f: f64) -> f64 {
    assert!(tr1 > 0.0 && f > 0.0 && f <= 1.0);
    let (s1, s2) = match fit.poles() {
        PolePair::Real { s1, s2 } => (s1, s2),
        PolePair::Complex { .. } => panic!("ceff_first_ramp_real_poles requires real poles"),
    };
    let num = |s: f64| fit.a1 + fit.a2 * s + fit.a3 * s * s;
    let term = |si: f64, sj: f64| {
        num(si) / (tr1 * f * fit.b2 * si * si * (si - sj)) * ((si * f * tr1).exp() - 1.0)
    };
    fit.a1 + term(s1, s2) + term(s2, s1)
}

/// The paper's explicit complex-pole (trigonometric) form of `Ceff1`
/// (Equation 5), cross-checked against the complex implementation.
///
/// # Panics
/// Panics if the fitted poles are real, `tr1 <= 0`, or `f` outside `(0, 1]`.
pub fn ceff_first_ramp_complex_poles(fit: &RationalAdmittance, tr1: f64, f: f64) -> f64 {
    assert!(tr1 > 0.0 && f > 0.0 && f <= 1.0);
    let (alpha, beta) = match fit.poles() {
        PolePair::Complex { alpha, beta } => (alpha, beta),
        PolePair::Real { .. } => panic!("ceff_first_ramp_complex_poles requires complex poles"),
    };
    // I(t) = (VDD/Tr1)[ p + e^{alpha t} (q cos(beta t) + r sin(beta t)) ] with
    // p = a1 and q, r obtained from the residues: H1 = (q - j r)/2 at
    // s1 = alpha + j beta.
    let s1 = Complex::new(alpha, beta);
    let s2 = Complex::new(alpha, -beta);
    let num = |s: Complex| Complex::real(fit.a1) + s * (Complex::real(fit.a2) + s * fit.a3);
    let h1 = num(s1) / (Complex::real(fit.b2) * s1 * (s1 - s2));
    let q = 2.0 * h1.re;
    let r = -2.0 * h1.im;
    let t_end = f * tr1;
    // ∫ e^{at} cos(bt) dt and ∫ e^{at} sin(bt) dt closed forms.
    let d = alpha * alpha + beta * beta;
    let e = (alpha * t_end).exp();
    let int_cos = (e * (alpha * (beta * t_end).cos() + beta * (beta * t_end).sin()) - alpha) / d;
    let int_sin = (e * (alpha * (beta * t_end).sin() - beta * (beta * t_end).cos()) + beta) / d;
    fit.a1 + (q * int_cos + r * int_sin) / (f * tr1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_interconnect::RlcLine;
    use rlc_moments::distributed_admittance_moments;
    use rlc_numeric::approx_eq;
    use rlc_numeric::quadrature::adaptive_simpson;
    use rlc_numeric::units::{ff, mm, nh, pf, ps};

    /// The paper's 5 mm / 1.6 um line terminated by a small receiver load.
    fn inductive_fit() -> RationalAdmittance {
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let m = distributed_admittance_moments(&line, ff(10.0), 5);
        RationalAdmittance::from_moments(&m).unwrap()
    }

    /// A resistive (RC-like) line whose fit has real poles.
    fn resistive_fit() -> RationalAdmittance {
        let line = RlcLine::new(400.0, nh(1.0), pf(1.5), mm(6.0));
        let m = distributed_admittance_moments(&line, ff(10.0), 5);
        RationalAdmittance::from_moments(&m).unwrap()
    }

    #[test]
    fn ceff1_equals_total_capacitance_for_slow_ramps() {
        // For a very slow ramp nothing is shielded: Ceff -> Ctotal.
        let fit = inductive_fit();
        let ceff = ceff_first_ramp(&fit, ps(1.0e6), 1.0);
        assert!(approx_eq(ceff, fit.a1, 1e-3), "{ceff} vs {}", fit.a1);
    }

    #[test]
    fn ceff1_is_shielded_for_fast_ramps() {
        let fit = inductive_fit();
        let fast = ceff_first_ramp(&fit, ps(30.0), 0.5);
        let slow = ceff_first_ramp(&fit, ps(2000.0), 0.5);
        assert!(fast < slow);
        assert!(fast < fit.a1);
        assert!(fast > 0.0);
    }

    #[test]
    fn ceff1_matches_numerical_charge_integration() {
        for fit in [inductive_fit(), resistive_fit()] {
            for &(tr, f) in &[(ps(60.0), 0.5), (ps(120.0), 0.45), (ps(200.0), 1.0)] {
                let vdd = 1.8;
                let closed = ceff_first_ramp(&fit, tr, f);
                let charge =
                    adaptive_simpson(|t| ramp_current(&fit, vdd, tr, t), 0.0, f * tr, 1e-20);
                let numeric = charge / (f * vdd);
                assert!(
                    approx_eq(closed, numeric, 1e-6),
                    "closed {closed:.6e} vs numeric {numeric:.6e} (tr={tr:.1e}, f={f})"
                );
            }
        }
    }

    #[test]
    fn ceff2_matches_numerical_charge_integration() {
        let vdd = 1.8;
        for fit in [inductive_fit(), resistive_fit()] {
            let (tr1, tr2, f) = (ps(50.0), ps(180.0), 0.48);
            let closed = ceff_second_ramp(&fit, tr1, tr2, f);
            // Numerical: integrate the current produced by the second-ramp
            // drive V(t) = VDD t / Tr2 + k f VDD over [f Tr1, f Tr1 + (1-f) Tr2].
            let k = 1.0 - tr1 / tr2;
            let (s1, s2, h1, h2) = super::residues(&fit);
            let current = |t: f64| {
                let val = Complex::real(fit.a1 / tr2)
                    + h1 * (Complex::real(1.0 / tr2) + s1 * (k * f)) * (s1 * t).exp()
                    + h2 * (Complex::real(1.0 / tr2) + s2 * (k * f)) * (s2 * t).exp();
                vdd * val.re
            };
            let t0 = f * tr1;
            let t1 = t0 + (1.0 - f) * tr2;
            let numeric = adaptive_simpson(current, t0, t1, 1e-20) / ((1.0 - f) * vdd);
            assert!(
                approx_eq(closed, numeric, 1e-6),
                "closed {closed:.6e} vs numeric {numeric:.6e}"
            );
        }
    }

    #[test]
    fn paper_real_pole_form_agrees_with_complex_implementation() {
        let fit = resistive_fit();
        assert!(fit.has_real_poles());
        for &(tr, f) in &[(ps(80.0), 0.5), (ps(150.0), 1.0), (ps(300.0), 0.7)] {
            let general = ceff_first_ramp(&fit, tr, f);
            let explicit = ceff_first_ramp_real_poles(&fit, tr, f);
            assert!(
                approx_eq(general, explicit, 1e-9),
                "{general:.6e} vs {explicit:.6e}"
            );
        }
    }

    #[test]
    fn paper_complex_pole_form_agrees_with_complex_implementation() {
        let fit = inductive_fit();
        assert!(!fit.has_real_poles());
        for &(tr, f) in &[(ps(60.0), 0.48), (ps(120.0), 1.0), (ps(40.0), 0.3)] {
            let general = ceff_first_ramp(&fit, tr, f);
            let explicit = ceff_first_ramp_complex_poles(&fit, tr, f);
            assert!(
                approx_eq(general, explicit, 1e-9),
                "{general:.6e} vs {explicit:.6e}"
            );
        }
    }

    #[test]
    fn charge_window_dispatch() {
        let fit = inductive_fit();
        let a = ceff_for_window(&fit, ChargeWindow::FirstRamp { f: 0.5 }, ps(80.0));
        assert!(approx_eq(a, ceff_first_ramp(&fit, ps(80.0), 0.5), 1e-15));
        let b = ceff_for_window(
            &fit,
            ChargeWindow::SecondRamp {
                f: 0.5,
                tr1: ps(50.0),
            },
            ps(200.0),
        );
        assert!(approx_eq(
            b,
            ceff_second_ramp(&fit, ps(50.0), ps(200.0), 0.5),
            1e-15
        ));
    }

    #[test]
    fn equating_to_50_percent_underestimates_the_tail() {
        // The paper's Figure 3 argument: equating charge only up to the 50 %
        // point ignores the flattened second half and yields a smaller (more
        // optimistic) capacitance than equating over the full transition.
        let fit = inductive_fit();
        let tr = ps(150.0);
        let to_50 = ceff_first_ramp(&fit, tr, 0.5);
        let to_100 = ceff_first_ramp(&fit, tr, 1.0);
        assert!(to_50 < to_100, "{to_50:.3e} vs {to_100:.3e}");
    }

    #[test]
    fn lumped_capacitor_is_never_shielded() {
        // Y(s) = C s: the effective capacitance is exactly C for any ramp.
        let fit = RationalAdmittance::lumped(0.5e-12).unwrap();
        for &tr in &[ps(10.0), ps(100.0), ps(1000.0)] {
            assert!(approx_eq(ceff_first_ramp(&fit, tr, 1.0), 0.5e-12, 1e-12));
            assert!(approx_eq(ceff_first_ramp(&fit, tr, 0.5), 0.5e-12, 1e-12));
            assert!(approx_eq(
                ceff_second_ramp(&fit, tr, 2.0 * tr, 0.5),
                0.5e-12,
                1e-12
            ));
            assert!(approx_eq(
                ramp_current(&fit, 1.8, tr, 0.3 * tr),
                1.8 / tr * 0.5e-12,
                1e-12
            ));
        }
    }

    #[test]
    fn single_pole_pi_load_matches_the_rc_closed_form() {
        // An RC pi load through the generalized charge matching must agree
        // with the classic Qian/Pillage shielding formula (full-transition
        // charge equating, f = 1).
        let pi = rlc_moments::PiModel {
            c_near: 0.2e-12,
            resistance: 120.0,
            c_far: 0.9e-12,
        };
        let fit = pi.admittance();
        assert_eq!(fit.pole_count(), 1);
        let baseline = rlc_moments::RcCeffBaseline::new(pi);
        for &tr in &[ps(20.0), ps(80.0), ps(300.0), ps(2000.0)] {
            let general = ceff_first_ramp(&fit, tr, 1.0);
            let closed = baseline.ceff_for_ramp(tr);
            assert!(
                approx_eq(general, closed, 1e-9),
                "tr = {tr:.1e}: {general:.6e} vs {closed:.6e}"
            );
        }
        // Fast ramps shield the far capacitance, slow ramps see everything.
        assert!(ceff_first_ramp(&fit, ps(5.0), 1.0) < 0.35e-12);
        assert!(ceff_first_ramp(&fit, ps(1e6), 1.0) > 1.05e-12);
    }

    #[test]
    fn single_pole_ceff_matches_numerical_charge_integration() {
        let pi = rlc_moments::PiModel {
            c_near: 0.3e-12,
            resistance: 90.0,
            c_far: 0.8e-12,
        };
        let fit = pi.admittance();
        let vdd = 1.8;
        // First ramp, partial window.
        for &(tr, f) in &[(ps(60.0), 0.5), (ps(150.0), 1.0)] {
            let closed = ceff_first_ramp(&fit, tr, f);
            let charge = adaptive_simpson(|t| ramp_current(&fit, vdd, tr, t), 0.0, f * tr, 1e-20);
            let numeric = charge / (f * vdd);
            assert!(
                approx_eq(closed, numeric, 1e-6),
                "closed {closed:.6e} vs numeric {numeric:.6e}"
            );
        }
        // Second ramp against its own mode integral.
        let (tr1, tr2, f) = (ps(50.0), ps(180.0), 0.48);
        let closed = ceff_second_ramp(&fit, tr1, tr2, f);
        let k = 1.0 - tr1 / tr2;
        let s1 = -1.0 / fit.b1;
        let h1 = (fit.a2 - fit.a1 * fit.b1) / fit.b1;
        let current =
            |t: f64| vdd * (fit.a1 / tr2 + h1 * (1.0 / tr2 + s1 * k * f) * (s1 * t).exp());
        let t0 = f * tr1;
        let t1 = t0 + (1.0 - f) * tr2;
        let numeric = adaptive_simpson(current, t0, t1, 1e-20) / ((1.0 - f) * vdd);
        assert!(
            approx_eq(closed, numeric, 1e-6),
            "closed {closed:.6e} vs numeric {numeric:.6e}"
        );
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn invalid_fraction_rejected() {
        let _ = ceff_first_ramp(&inductive_fit(), ps(100.0), 1.5);
    }

    #[test]
    #[should_panic(expected = "requires real poles")]
    fn real_pole_form_rejects_complex_fit() {
        let _ = ceff_first_ramp_real_poles(&inductive_fit(), ps(100.0), 0.5);
    }
}
