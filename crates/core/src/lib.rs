//! # rlc-ceff
//!
//! The paper's contribution: an effective-capacitance based driver output
//! model for on-chip RLC interconnects (Agarwal, Sylvester, Blaauw, DAC
//! 2003).
//!
//! Given a pre-characterized driver cell (delay / output-transition tables
//! from `rlc-charlib`), the extracted parasitics of an RLC line
//! (`rlc-interconnect`) and its load capacitance, the model:
//!
//! 1. fits the rational driving-point admittance
//!    `Y(s) = (a1 s + a2 s² + a3 s³)/(1 + b1 s + b2 s²)` to five admittance
//!    moments ([`rlc_moments`]),
//! 2. computes the voltage breakpoint `f = Z0 / (Z0 + Rs)` from the driver's
//!    on-resistance and the line impedance ([`breakpoint`]),
//! 3. finds **two effective capacitances** by equating the charge delivered
//!    into `Y(s)` with the charge delivered into a lumped capacitor over the
//!    first-ramp and second-ramp intervals ([`charge`], [`iteration`]),
//! 4. corrects the second ramp for the reflection plateau ([`plateau`]),
//! 5. screens for inductance significance with the paper's Equation 9
//!    ([`criteria`]), falling back to a classic single effective capacitance
//!    ([`single_ramp`]) when the line behaves resistively,
//! 6. assembles the resulting one- or two-ramp driver output waveform
//!    ([`two_ramp`], [`flow`]) and propagates it to the far end of the line
//!    ([`far_end`]).
//!
//! The [`validation`] module runs the golden `rlc-spice` simulation of the
//! same testbench and reports model-vs-simulation delay and slew errors; the
//! `rlc-bench` crate uses it to regenerate every table and figure of the
//! paper.
//!
//! ```no_run
//! use rlc_ceff::prelude::*;
//! use rlc_charlib::prelude::*;
//! use rlc_interconnect::prelude::*;
//!
//! let mut library = Library::new(CharacterizationGrid::default());
//! let cell = library.cell(75.0)?.clone();
//! let line = EmpiricalExtractor::cmos018().extract(&WireGeometry::new(mm(5.0), um(1.6)));
//!
//! let case = AnalysisCase::try_new(&cell, &line, ff(10.0), ps(100.0))?;
//! let model = DriverOutputModeler::new(ModelingConfig::default()).model(&case)?;
//! println!("driver output modelled as {}", model.describe());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod breakpoint;
pub mod charge;
pub mod criteria;
pub mod far_end;
pub mod flow;
pub mod iteration;
pub mod plateau;
pub mod single_ramp;
pub mod two_ramp;
pub mod validation;

pub use breakpoint::voltage_breakpoint;
pub use charge::{ceff_first_ramp, ceff_second_ramp, ChargeWindow};
pub use criteria::{CriteriaReport, InductanceCriteria};
pub use far_end::{FarEndResponse, SinkResponse, TreeFarEndResponse};
pub use flow::{
    AnalysisCase, DriverOutputModel, DriverOutputModeler, ModelingConfig, ReducedLoad,
    WaveParameters,
};
pub use iteration::{CeffIteration, IterationSettings};
pub use plateau::plateau_corrected_tr2;
pub use single_ramp::SingleRampModel;
pub use two_ramp::TwoRampModel;
pub use validation::{CaseComparison, GoldenWaveforms};

/// Convenient glob import.
pub mod prelude {
    pub use crate::breakpoint::voltage_breakpoint;
    pub use crate::charge::{ceff_first_ramp, ceff_second_ramp, ChargeWindow};
    pub use crate::criteria::{CriteriaReport, InductanceCriteria};
    pub use crate::far_end::{FarEndResponse, SinkResponse, TreeFarEndResponse};
    pub use crate::flow::{
        AnalysisCase, DriverOutputModel, DriverOutputModeler, ModelingConfig, ReducedLoad,
        WaveParameters,
    };
    pub use crate::iteration::{CeffIteration, IterationSettings};
    pub use crate::single_ramp::SingleRampModel;
    pub use crate::two_ramp::TwoRampModel;
    pub use crate::validation::{CaseComparison, GoldenWaveforms};
    pub use crate::CeffError;
}

/// Errors produced by the modelling flow.
#[derive(Debug, Clone, PartialEq)]
pub enum CeffError {
    /// The analysis case itself is invalid (non-positive input slew,
    /// negative load capacitance, or a model variant that requires a
    /// transmission line applied to a lumped load).
    InvalidCase(String),
    /// The admittance moment fit failed (degenerate load).
    MomentFit(String),
    /// A Ceff iteration failed to converge.
    IterationDiverged {
        /// Which iteration failed ("Ceff1", "Ceff2", "single Ceff").
        which: &'static str,
        /// Iterations attempted.
        iterations: usize,
    },
    /// The golden or far-end simulation failed.
    Simulation(String),
    /// A waveform measurement failed.
    Measurement(String),
}

impl std::fmt::Display for CeffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CeffError::InvalidCase(msg) => write!(f, "invalid analysis case: {msg}"),
            CeffError::MomentFit(msg) => write!(f, "admittance fit failed: {msg}"),
            CeffError::IterationDiverged { which, iterations } => {
                write!(
                    f,
                    "{which} iteration failed to converge after {iterations} steps"
                )
            }
            CeffError::Simulation(msg) => write!(f, "simulation failed: {msg}"),
            CeffError::Measurement(msg) => write!(f, "measurement failed: {msg}"),
        }
    }
}

impl std::error::Error for CeffError {}

impl From<rlc_moments::MomentError> for CeffError {
    fn from(e: rlc_moments::MomentError) -> Self {
        CeffError::MomentFit(e.to_string())
    }
}

impl From<rlc_spice::SpiceError> for CeffError {
    fn from(e: rlc_spice::SpiceError) -> Self {
        CeffError::Simulation(e.to_string())
    }
}

impl From<rlc_charlib::CharlibError> for CeffError {
    fn from(e: rlc_charlib::CharlibError) -> Self {
        CeffError::Simulation(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversions() {
        assert!(CeffError::MomentFit("x".into()).to_string().contains('x'));
        let e = CeffError::IterationDiverged {
            which: "Ceff1",
            iterations: 42,
        };
        assert!(e.to_string().contains("Ceff1"));
        assert!(e.to_string().contains("42"));
        let e: CeffError = rlc_moments::MomentError::DegenerateLoad("cap".into()).into();
        assert!(matches!(e, CeffError::MomentFit(_)));
        let e: CeffError = rlc_spice::SpiceError::InvalidCircuit("y".into()).into();
        assert!(matches!(e, CeffError::Simulation(_)));
        let e: CeffError = rlc_charlib::CharlibError::InvalidGrid("z".into()).into();
        assert!(matches!(e, CeffError::Simulation(_)));
        assert!(CeffError::Measurement("m".into()).to_string().contains('m'));
        assert!(CeffError::InvalidCase("bad slew".into())
            .to_string()
            .contains("bad slew"));
    }
}
