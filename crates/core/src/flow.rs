//! The complete modelling flow (Section 5 of the paper).
//!
//! Given line parasitics and the characterized output delay table for the
//! driver:
//!
//! 1. find the driving-point admittance moments and fit `a1..a3`, `b1`, `b2`;
//! 2. find the driver on-resistance `Rs` and compute the voltage breakpoint
//!    `f` (Equation 1);
//! 3. perform the `Ceff1` iterations and find `Tr1`;
//! 4. check the inductance criteria (Equation 9);
//! 5. if inductance is significant, perform the `Ceff2` iterations, apply the
//!    plateau correction (Equation 8) and model the output as two ramps;
//!    otherwise iterate a single effective capacitance (`f = 1`) and model
//!    the output as one ramp.

use rlc_charlib::DriverCell;
use rlc_interconnect::RlcLine;
use rlc_moments::{distributed_admittance_moments, RationalAdmittance};
use rlc_numeric::units::ps;
use rlc_spice::SourceWaveform;

use crate::breakpoint::voltage_breakpoint;
use crate::criteria::{CriteriaReport, InductanceCriteria};
use crate::iteration::{iterate_ceff1, iterate_ceff2, CeffIteration, IterationSettings};
use crate::plateau::plateau_corrected_tr2;
use crate::single_ramp::SingleRampModel;
use crate::two_ramp::TwoRampModel;
use crate::CeffError;

/// One timing-analysis case: a driver cell, the RLC line it drives, the
/// far-end (fan-out) load capacitance and the input transition time.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisCase<'a> {
    /// The characterized driver.
    pub cell: &'a DriverCell,
    /// The extracted RLC line.
    pub line: &'a RlcLine,
    /// Far-end load capacitance (farads).
    pub c_load: f64,
    /// Input transition time (seconds, 0–100 %).
    pub input_slew: f64,
    /// Absolute time at which the input ramp starts (seconds).
    pub input_delay: f64,
}

impl<'a> AnalysisCase<'a> {
    /// Creates a case with the default 20 ps input delay, validating the
    /// inputs.
    ///
    /// # Errors
    /// Returns [`CeffError::InvalidCase`] if `input_slew` is not positive
    /// and finite or `c_load` is negative or non-finite.
    pub fn try_new(
        cell: &'a DriverCell,
        line: &'a RlcLine,
        c_load: f64,
        input_slew: f64,
    ) -> Result<Self, CeffError> {
        if !(input_slew > 0.0 && input_slew.is_finite()) {
            return Err(CeffError::InvalidCase(format!(
                "input slew must be positive and finite, got {input_slew:e}"
            )));
        }
        if !(c_load >= 0.0 && c_load.is_finite()) {
            return Err(CeffError::InvalidCase(format!(
                "load capacitance must be non-negative and finite, got {c_load:e}"
            )));
        }
        Ok(AnalysisCase {
            cell,
            line,
            c_load,
            input_slew,
            input_delay: ps(20.0),
        })
    }

    /// Creates a case with the default 20 ps input delay.
    ///
    /// # Panics
    /// Panics if `input_slew <= 0` or `c_load < 0`.
    #[deprecated(
        since = "0.2.0",
        note = "use AnalysisCase::try_new (or the rlc-ceff-suite Stage builder), which \
                returns a Result instead of panicking on bad inputs"
    )]
    pub fn new(cell: &'a DriverCell, line: &'a RlcLine, c_load: f64, input_slew: f64) -> Self {
        Self::try_new(cell, line, c_load, input_slew).expect("invalid analysis case")
    }

    /// Sets the absolute start time of the input ramp (builder style).
    pub fn with_input_delay(mut self, input_delay: f64) -> Self {
        self.input_delay = input_delay;
        self
    }

    /// Absolute time of the input's 50 % crossing.
    pub fn input_t50(&self) -> f64 {
        self.input_delay + 0.5 * self.input_slew
    }

    /// Total capacitance of the load (line plus fan-out).
    pub fn total_capacitance(&self) -> f64 {
        self.line.capacitance() + self.c_load
    }

    /// Reduces this case's load (line + fan-out capacitance) to the fitted
    /// rational admittance plus wave parameters.
    ///
    /// # Errors
    /// Propagates moment-fit errors.
    pub fn reduce_load(&self) -> Result<ReducedLoad, CeffError> {
        ReducedLoad::from_line(self.line, self.c_load)
    }
}

/// Wave-propagation parameters of a load that contains a transmission line —
/// everything the voltage breakpoint (Equation 1) and the Equation 9
/// screening need beyond the fitted admittance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveParameters {
    /// Lossless characteristic impedance `Z0 = sqrt(L/C)` (ohms).
    pub characteristic_impedance: f64,
    /// Time of flight `tf = sqrt(L_total C_total)` (seconds).
    pub time_of_flight: f64,
    /// Total series resistance of the line (ohms).
    pub line_resistance: f64,
    /// Total shunt capacitance of the line (farads).
    pub line_capacitance: f64,
}

impl WaveParameters {
    /// The wave parameters of an extracted RLC line.
    pub fn of_line(line: &RlcLine) -> Self {
        WaveParameters {
            characteristic_impedance: line.characteristic_impedance(),
            time_of_flight: line.time_of_flight(),
            line_resistance: line.resistance(),
            line_capacitance: line.capacitance(),
        }
    }
}

/// A reduced, driver-independent description of an arbitrary load: the
/// rational driving-point admittance the charge matching runs against, the
/// external (fan-out) capacitance beyond any line, and — when the load
/// contains a transmission line — its wave parameters.
///
/// This is the seam the `rlc-ceff-suite` facade's `LoadModel` trait plugs
/// into: a lumped capacitor or an RC pi model reduces to an exact admittance
/// with `wave: None` (the flow then uses the classic single-ramp path), while
/// a distributed RLC line reduces to the paper's five-moment fit with its
/// wave parameters attached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReducedLoad {
    /// The rational admittance seen from the driving point.
    pub fit: RationalAdmittance,
    /// Fan-out capacitance beyond the line (the `C_L` of Equation 9); for
    /// loads without a line this equals the total capacitance.
    pub external_load: f64,
    /// Wave parameters, present only when the load contains a line.
    pub wave: Option<WaveParameters>,
}

impl ReducedLoad {
    /// Reduces an RLC line terminated by `c_load`: fits the rational
    /// admittance to five distributed moments and records the wave
    /// parameters.
    ///
    /// # Errors
    /// Propagates moment-fit errors.
    pub fn from_line(line: &RlcLine, c_load: f64) -> Result<Self, CeffError> {
        let moments = distributed_admittance_moments(line, c_load, 5);
        Ok(ReducedLoad {
            fit: RationalAdmittance::from_moments(&moments)?,
            external_load: c_load,
            wave: Some(WaveParameters::of_line(line)),
        })
    }

    /// A lumped capacitive load `Y(s) = C s`.
    ///
    /// # Errors
    /// Returns a moment-fit error if `c` is not positive.
    pub fn lumped(c: f64) -> Result<Self, CeffError> {
        Ok(ReducedLoad {
            fit: RationalAdmittance::lumped(c)?,
            external_load: c,
            wave: None,
        })
    }

    /// Total capacitance of the load (the first admittance moment).
    pub fn total_capacitance(&self) -> f64 {
        self.fit.total_capacitance()
    }
}

/// Configuration of the modelling flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelingConfig {
    /// Convergence controls for the Ceff iterations.
    pub iteration: IterationSettings,
    /// Inductance-significance thresholds (Equation 9).
    pub criteria: InductanceCriteria,
    /// When true (the paper's prescription) the driver on-resistance is
    /// re-extracted against the total capacitance of each analyzed load;
    /// when false the resistance cached at characterization time is reused,
    /// which the paper argues is an acceptable simplification.
    pub extract_rs_per_case: bool,
}

impl Default for ModelingConfig {
    fn default() -> Self {
        ModelingConfig {
            iteration: IterationSettings::default(),
            criteria: InductanceCriteria::default(),
            extract_rs_per_case: true,
        }
    }
}

/// The waveform part of a driver-output model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelWaveform {
    /// Single saturated ramp (inductance not significant).
    SingleRamp(SingleRampModel),
    /// Two-ramp waveform (inductance significant).
    TwoRamp(TwoRampModel),
}

/// The result of modelling one case: the waveform plus every intermediate
/// quantity of the flow, for diagnostics and for the experiment harness.
#[derive(Debug, Clone)]
pub struct DriverOutputModel {
    /// The modelled driver-output waveform.
    pub waveform: ModelWaveform,
    /// The fitted rational admittance of the load.
    pub fit: RationalAdmittance,
    /// Driver on-resistance used for the breakpoint (ohms).
    pub driver_resistance: f64,
    /// Voltage breakpoint fraction `f`.
    pub breakpoint: f64,
    /// The converged first-ramp (or single-ramp) Ceff iteration.
    pub ceff1: CeffIteration,
    /// The converged second-ramp Ceff iteration (two-ramp models only).
    pub ceff2: Option<CeffIteration>,
    /// Second-ramp duration before the plateau correction (seconds).
    pub tr2_uncorrected: Option<f64>,
    /// The inductance-criteria evaluation.
    pub criteria: CriteriaReport,
    /// Absolute time of the input's 50 % crossing (seconds).
    pub input_t50: f64,
    /// Supply voltage (volts).
    pub vdd: f64,
}

impl DriverOutputModel {
    /// Whether the two-ramp model was selected.
    pub fn is_two_ramp(&self) -> bool {
        matches!(self.waveform, ModelWaveform::TwoRamp(_))
    }

    /// Modelled driver-output voltage at absolute time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        match self.waveform {
            ModelWaveform::SingleRamp(m) => m.value_at(t),
            ModelWaveform::TwoRamp(m) => m.value_at(t),
        }
    }

    /// Modelled 50 % delay from the input's 50 % crossing (seconds).
    pub fn delay(&self) -> f64 {
        match self.waveform {
            ModelWaveform::SingleRamp(m) => m.delay_from(self.input_t50),
            ModelWaveform::TwoRamp(m) => m.delay_from(self.input_t50),
        }
    }

    /// Modelled 10–90 % output transition time (seconds).
    pub fn slew(&self) -> f64 {
        match self.waveform {
            ModelWaveform::SingleRamp(m) => m.slew_10_90(),
            ModelWaveform::TwoRamp(m) => m.slew_10_90(),
        }
    }

    /// The modelled waveform as a PWL source padded to `t_stop`, for driving
    /// far-end simulations.
    pub fn to_source(&self, t_stop: f64) -> SourceWaveform {
        match self.waveform {
            ModelWaveform::SingleRamp(m) => m.to_source(t_stop),
            ModelWaveform::TwoRamp(m) => m.to_source(t_stop),
        }
    }

    /// Time at which the modelled transition is complete (seconds).
    pub fn end_time(&self) -> f64 {
        match self.waveform {
            ModelWaveform::SingleRamp(m) => m.start_time + m.tr,
            ModelWaveform::TwoRamp(m) => m.start_time + m.end_time(),
        }
    }

    /// One-line human-readable description.
    pub fn describe(&self) -> String {
        match self.waveform {
            ModelWaveform::SingleRamp(m) => format!(
                "{m} (Ceff = {:.1} fF, f = {:.2}, Rs = {:.1} ohm)",
                self.ceff1.ceff * 1e15,
                self.breakpoint,
                self.driver_resistance
            ),
            ModelWaveform::TwoRamp(m) => format!(
                "{m} (Ceff1 = {:.1} fF, Ceff2 = {:.1} fF, Rs = {:.1} ohm)",
                self.ceff1.ceff * 1e15,
                self.ceff2.map(|c| c.ceff).unwrap_or(f64::NAN) * 1e15,
                self.driver_resistance
            ),
        }
    }
}

/// The modelling-flow driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriverOutputModeler {
    config: ModelingConfig,
}

impl DriverOutputModeler {
    /// Creates a modeler with the given configuration.
    pub fn new(config: ModelingConfig) -> Self {
        DriverOutputModeler { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ModelingConfig {
        &self.config
    }

    fn driver_resistance(
        &self,
        cell: &DriverCell,
        total_capacitance: f64,
    ) -> Result<f64, CeffError> {
        if self.config.extract_rs_per_case {
            Ok(cell.on_resistance_for_load(total_capacitance)?)
        } else {
            Ok(cell.on_resistance())
        }
    }

    /// The voltage breakpoint for a reduced load: Equation 1 against the
    /// line's characteristic impedance, or `1.0` (no breakpoint — the whole
    /// transition is one ramp) for loads without a line.
    fn breakpoint(load: &ReducedLoad, rs: f64) -> f64 {
        match load.wave {
            Some(wave) => voltage_breakpoint(wave.characteristic_impedance, rs).clamp(0.02, 0.98),
            None => 1.0,
        }
    }

    fn criteria_report(&self, load: &ReducedLoad, rs: f64, tr1: f64) -> CriteriaReport {
        match load.wave {
            Some(wave) => self.config.criteria.evaluate_raw(
                wave.characteristic_impedance,
                wave.time_of_flight,
                wave.line_resistance,
                wave.line_capacitance,
                load.external_load,
                rs,
                tr1,
            ),
            None => CriteriaReport::without_line(load.external_load),
        }
    }

    /// Anchors a ramp whose table delay and duration are known: the table
    /// delay positions the (virtual) 50 % point of the Ceff ramp, so the
    /// transition starts half a ramp earlier.
    fn start_time(input_t50: f64, delay: f64, ramp_time: f64) -> f64 {
        input_t50 + delay - 0.5 * ramp_time
    }

    #[allow(clippy::too_many_arguments)]
    fn single_ramp_reduced(
        &self,
        cell: &DriverCell,
        load: &ReducedLoad,
        rs: f64,
        f: f64,
        input_slew: f64,
        input_t50: f64,
        report: Option<CriteriaReport>,
    ) -> Result<DriverOutputModel, CeffError> {
        let single = iterate_ceff1(cell, &load.fit, input_slew, 1.0, &self.config.iteration)?;
        let report = match report {
            Some(r) => r,
            None => self.criteria_report(load, rs, single.ramp_time),
        };
        let start = Self::start_time(input_t50, single.delay, single.ramp_time);
        Ok(DriverOutputModel {
            waveform: ModelWaveform::SingleRamp(SingleRampModel::new(
                cell.vdd(),
                single.ramp_time,
                start,
            )),
            fit: load.fit,
            driver_resistance: rs,
            breakpoint: f,
            ceff1: single,
            ceff2: None,
            tr2_uncorrected: None,
            criteria: report,
            input_t50,
            vdd: cell.vdd(),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn two_ramp_reduced(
        &self,
        cell: &DriverCell,
        load: &ReducedLoad,
        rs: f64,
        f: f64,
        ceff1: CeffIteration,
        report: CriteriaReport,
        input_slew: f64,
        input_t50: f64,
    ) -> Result<DriverOutputModel, CeffError> {
        let wave = load.wave.ok_or_else(|| {
            CeffError::InvalidCase(
                "the two-ramp model needs a transmission-line load (reflection plateau); \
                 this load has no wave parameters"
                    .to_string(),
            )
        })?;
        let ceff2 = iterate_ceff2(
            cell,
            &load.fit,
            input_slew,
            f,
            ceff1.ramp_time,
            &self.config.iteration,
        )?;
        let tr2_new =
            plateau_corrected_tr2(ceff2.ramp_time, ceff1.ramp_time, wave.time_of_flight, f);
        let start = Self::start_time(input_t50, ceff1.delay, ceff1.ramp_time);
        Ok(DriverOutputModel {
            waveform: ModelWaveform::TwoRamp(TwoRampModel::new(
                cell.vdd(),
                f,
                ceff1.ramp_time,
                tr2_new,
                start,
            )),
            fit: load.fit,
            driver_resistance: rs,
            breakpoint: f,
            ceff1,
            ceff2: Some(ceff2),
            tr2_uncorrected: Some(ceff2.ramp_time),
            criteria: report,
            input_t50,
            vdd: cell.vdd(),
        })
    }

    /// Runs the full flow against an already reduced load: two-ramp when the
    /// load has a line and the inductance criteria pass, single ramp
    /// otherwise. This is the generalized entry point the `rlc-ceff-suite`
    /// facade drives; `input_t50 = input_delay + input_slew / 2`.
    ///
    /// # Errors
    /// Propagates iteration and characterization errors.
    pub fn model_reduced(
        &self,
        cell: &DriverCell,
        load: &ReducedLoad,
        input_slew: f64,
        input_delay: f64,
    ) -> Result<DriverOutputModel, CeffError> {
        let rs = self.driver_resistance(cell, load.total_capacitance())?;
        let f = Self::breakpoint(load, rs);
        let input_t50 = input_delay + 0.5 * input_slew;
        if load.wave.is_none() {
            // No line, no reflection: the classic single effective
            // capacitance is the whole story.
            return self.single_ramp_reduced(cell, load, rs, f, input_slew, input_t50, None);
        }

        // Step 3: Ceff1 / Tr1.
        let ceff1 = iterate_ceff1(cell, &load.fit, input_slew, f, &self.config.iteration)?;

        // Step 4: inductance criteria using the *output* initial ramp.
        let report = self.criteria_report(load, rs, ceff1.ramp_time);

        if report.inductance_significant() {
            // Step 5a: Ceff2, plateau correction, two-ramp waveform.
            self.two_ramp_reduced(cell, load, rs, f, ceff1, report, input_slew, input_t50)
        } else {
            // Step 5b: classic single effective capacitance (f = 1).
            self.single_ramp_reduced(cell, load, rs, f, input_slew, input_t50, Some(report))
        }
    }

    /// The single-ramp (classic Ceff) model of a reduced load regardless of
    /// the inductance criteria — the "1 ramp" baseline column of Table 1.
    ///
    /// # Errors
    /// Propagates iteration and characterization errors.
    pub fn model_reduced_single_ramp(
        &self,
        cell: &DriverCell,
        load: &ReducedLoad,
        input_slew: f64,
        input_delay: f64,
    ) -> Result<DriverOutputModel, CeffError> {
        let rs = self.driver_resistance(cell, load.total_capacitance())?;
        let f = Self::breakpoint(load, rs);
        let input_t50 = input_delay + 0.5 * input_slew;
        self.single_ramp_reduced(cell, load, rs, f, input_slew, input_t50, None)
    }

    /// The two-ramp model of a reduced load regardless of the inductance
    /// criteria (used for ablation studies and the figure binaries).
    ///
    /// # Errors
    /// Propagates iteration and characterization errors, and returns
    /// [`CeffError::InvalidCase`] for loads without a transmission line.
    pub fn model_reduced_two_ramp(
        &self,
        cell: &DriverCell,
        load: &ReducedLoad,
        input_slew: f64,
        input_delay: f64,
    ) -> Result<DriverOutputModel, CeffError> {
        let rs = self.driver_resistance(cell, load.total_capacitance())?;
        let f = Self::breakpoint(load, rs);
        let input_t50 = input_delay + 0.5 * input_slew;
        let ceff1 = iterate_ceff1(cell, &load.fit, input_slew, f, &self.config.iteration)?;
        let report = self.criteria_report(load, rs, ceff1.ramp_time);
        self.two_ramp_reduced(cell, load, rs, f, ceff1, report, input_slew, input_t50)
    }

    /// Runs the full flow: two-ramp when the inductance criteria pass, single
    /// ramp otherwise.
    ///
    /// # Errors
    /// Propagates moment-fit, iteration and simulation errors.
    pub fn model(&self, case: &AnalysisCase<'_>) -> Result<DriverOutputModel, CeffError> {
        let load = case.reduce_load()?;
        self.model_reduced(case.cell, &load, case.input_slew, case.input_delay)
    }

    /// Always produces the single-ramp (classic Ceff) model regardless of the
    /// inductance criteria — the "1 ramp" baseline column of Table 1.
    ///
    /// # Errors
    /// Propagates moment-fit, iteration and simulation errors.
    pub fn model_single_ramp(
        &self,
        case: &AnalysisCase<'_>,
    ) -> Result<DriverOutputModel, CeffError> {
        let load = case.reduce_load()?;
        self.model_reduced_single_ramp(case.cell, &load, case.input_slew, case.input_delay)
    }

    /// Always produces the two-ramp model regardless of the inductance
    /// criteria (used for ablation studies and the figure binaries).
    ///
    /// # Errors
    /// Propagates moment-fit, iteration and simulation errors.
    pub fn model_two_ramp(&self, case: &AnalysisCase<'_>) -> Result<DriverOutputModel, CeffError> {
        let load = case.reduce_load()?;
        self.model_reduced_two_ramp(case.cell, &load, case.input_slew, case.input_delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_charlib::{DriverCell, TimingTable};
    use rlc_numeric::units::{ff, mm, nh, pf};
    use rlc_spice::testbench::InverterSpec;

    /// Synthetic cells avoid running transient simulations in these tests;
    /// the end-to-end behaviour with real characterized cells is covered by
    /// the validation module and the workspace integration tests.
    fn synthetic_cell(size: f64, on_resistance: f64) -> DriverCell {
        let slews = vec![ps(50.0), ps(100.0), ps(200.0)];
        let loads = vec![ff(50.0), ff(200.0), ff(500.0), pf(1.0), pf(2.0)];
        let transition: Vec<Vec<f64>> = slews
            .iter()
            .map(|&s| {
                loads
                    .iter()
                    .map(|&c| ps(10.0) + 0.1 * s + (c / 1e-12) * ps(12000.0) / size)
                    .collect()
            })
            .collect();
        let delay: Vec<Vec<f64>> = slews
            .iter()
            .map(|&s| {
                loads
                    .iter()
                    .map(|&c| ps(5.0) + 0.2 * s + (c / 1e-12) * ps(4000.0) / size)
                    .collect()
            })
            .collect();
        DriverCell::from_parts(
            InverterSpec::sized_018(size),
            TimingTable::new(slews, loads, delay, transition),
            on_resistance,
        )
    }

    fn fast_config() -> ModelingConfig {
        ModelingConfig {
            extract_rs_per_case: false,
            ..ModelingConfig::default()
        }
    }

    fn paper_line() -> RlcLine {
        RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0))
    }

    #[test]
    fn strong_driver_selects_two_ramp_model() {
        let cell = synthetic_cell(75.0, 70.0);
        let line = paper_line();
        let case = AnalysisCase::try_new(&cell, &line, ff(10.0), ps(100.0)).unwrap();
        let model = DriverOutputModeler::new(fast_config())
            .model(&case)
            .unwrap();
        assert!(model.is_two_ramp(), "{}", model.describe());
        assert!(model.criteria.inductance_significant());
        // The breakpoint for a ~70 ohm driver on a ~68 ohm line is near 0.5.
        assert!(model.breakpoint > 0.4 && model.breakpoint < 0.6);
        // Ceff2 exceeds Ceff1, both below the total capacitance.
        let c2 = model.ceff2.unwrap();
        assert!(c2.ceff > model.ceff1.ceff);
        assert!(c2.ceff <= 3.0 * case.total_capacitance());
        // The plateau correction stretches the second ramp.
        assert!(match model.waveform {
            ModelWaveform::TwoRamp(m) => m.tr2 > model.tr2_uncorrected.unwrap(),
            _ => false,
        });
        // Delay and slew are positive and ordered sensibly.
        assert!(model.delay() > 0.0);
        assert!(model.slew() > model.delay());
    }

    #[test]
    fn weak_driver_selects_single_ramp_model() {
        let cell = synthetic_cell(25.0, 220.0);
        let line = paper_line();
        let case = AnalysisCase::try_new(&cell, &line, ff(10.0), ps(100.0)).unwrap();
        let model = DriverOutputModeler::new(fast_config())
            .model(&case)
            .unwrap();
        assert!(!model.is_two_ramp(), "{}", model.describe());
        assert!(model.ceff2.is_none());
        assert!(model.delay() > 0.0 && model.slew() > 0.0);
    }

    #[test]
    fn forced_variants_produce_both_shapes() {
        let cell = synthetic_cell(75.0, 70.0);
        let line = paper_line();
        let case = AnalysisCase::try_new(&cell, &line, ff(10.0), ps(100.0)).unwrap();
        let modeler = DriverOutputModeler::new(fast_config());
        let one = modeler.model_single_ramp(&case).unwrap();
        let two = modeler.model_two_ramp(&case).unwrap();
        assert!(!one.is_two_ramp());
        assert!(two.is_two_ramp());
        // The single-ramp baseline underestimates the slew relative to the
        // two-ramp model for an inductive case (the paper's core claim).
        assert!(one.slew() < two.slew());
        assert!(one.describe().contains("Ceff"));
        assert!(two.describe().contains("Ceff2"));
    }

    #[test]
    fn model_value_and_source_are_consistent() {
        let cell = synthetic_cell(75.0, 70.0);
        let line = paper_line();
        let case = AnalysisCase::try_new(&cell, &line, ff(10.0), ps(100.0)).unwrap();
        let model = DriverOutputModeler::new(fast_config())
            .model(&case)
            .unwrap();
        let src = model.to_source(2e-9);
        for &t in &[0.0, 50e-12, 150e-12, 300e-12, 600e-12, 1.5e-9] {
            assert!((src.value_at(t) - model.value_at(t)).abs() < 1e-9);
        }
        assert!(model.end_time() > model.input_t50);
    }

    #[test]
    fn case_accessors() {
        let cell = synthetic_cell(75.0, 70.0);
        let line = paper_line();
        let case = AnalysisCase::try_new(&cell, &line, ff(20.0), ps(100.0))
            .unwrap()
            .with_input_delay(ps(40.0));
        assert!((case.input_t50() - ps(90.0)).abs() < 1e-15);
        assert!((case.total_capacitance() - (1.10e-12 + 20e-15)).abs() < 1e-18);
    }

    #[test]
    fn default_config_extracts_rs_per_case() {
        let config = ModelingConfig::default();
        assert!(config.extract_rs_per_case);
        let modeler = DriverOutputModeler::default();
        assert!(modeler.config().extract_rs_per_case);
    }

    #[test]
    fn invalid_case_rejected_with_error() {
        let cell = synthetic_cell(75.0, 70.0);
        let line = paper_line();
        assert!(matches!(
            AnalysisCase::try_new(&cell, &line, ff(10.0), 0.0),
            Err(CeffError::InvalidCase(_))
        ));
        assert!(matches!(
            AnalysisCase::try_new(&cell, &line, -1.0e-15, ps(100.0)),
            Err(CeffError::InvalidCase(_))
        ));
        assert!(matches!(
            AnalysisCase::try_new(&cell, &line, f64::NAN, ps(100.0)),
            Err(CeffError::InvalidCase(_))
        ));
    }

    #[test]
    fn lumped_reduced_load_uses_single_ramp_and_full_capacitance() {
        let cell = synthetic_cell(75.0, 70.0);
        let load = ReducedLoad::lumped(pf(0.8)).unwrap();
        let modeler = DriverOutputModeler::new(fast_config());
        let model = modeler
            .model_reduced(&cell, &load, ps(100.0), ps(20.0))
            .unwrap();
        assert!(!model.is_two_ramp());
        // A lumped capacitor is never shielded: Ceff == C exactly.
        assert!((model.ceff1.ceff - pf(0.8)).abs() < 1e-18 * 1e3);
        assert_eq!(model.breakpoint, 1.0);
        assert!(!model.criteria.inductance_significant());
        assert!(model.delay() > 0.0 && model.slew() > 0.0);
        // Forcing the two-ramp variant on a line-less load is an invalid case.
        assert!(matches!(
            modeler.model_reduced_two_ramp(&cell, &load, ps(100.0), ps(20.0)),
            Err(CeffError::InvalidCase(_))
        ));
    }

    #[test]
    fn reduced_line_load_matches_case_path() {
        let cell = synthetic_cell(75.0, 70.0);
        let line = paper_line();
        let case = AnalysisCase::try_new(&cell, &line, ff(10.0), ps(100.0)).unwrap();
        let modeler = DriverOutputModeler::new(fast_config());
        let via_case = modeler.model(&case).unwrap();
        let load = case.reduce_load().unwrap();
        let via_reduced = modeler
            .model_reduced(&cell, &load, case.input_slew, case.input_delay)
            .unwrap();
        assert_eq!(via_case.waveform, via_reduced.waveform);
        assert_eq!(via_case.ceff1, via_reduced.ceff1);
        assert_eq!(via_case.ceff2, via_reduced.ceff2);
    }
}
