//! Quickstart: model the driver output of one on-chip RLC net.
//!
//! This walks the full paper flow on the flagship case (a 5 mm, 1.6 µm global
//! wire driven by a 75X inverter): extract the parasitics, characterize the
//! driver, fit the driving-point admittance, compute the two effective
//! capacitances and print the resulting two-ramp waveform parameters, then
//! cross-check delay and slew against the built-in transient simulator.
//!
//! Run with: `cargo run --release --example quickstart`

use rlc_ceff::prelude::*;
use rlc_ceff::validation::GoldenOptions;
use rlc_charlib::prelude::*;
use rlc_interconnect::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Extract the line parasitics for a 5 mm x 1.6 um top-metal wire.
    let geometry = WireGeometry::new(mm(5.0), um(1.6));
    let line = EmpiricalExtractor::cmos018().extract(&geometry);
    println!("wire {geometry}: {line}");
    println!(
        "  Z0 = {:.1} ohm, time of flight = {:.1} ps",
        line.characteristic_impedance(),
        line.time_of_flight() * 1e12
    );

    // 2. Characterize the 75X driver (a few dozen transient simulations).
    println!("characterizing the 75X driver ...");
    let mut library = Library::new(CharacterizationGrid::default());
    let cell = library.cell(75.0)?.clone();
    println!(
        "  on-resistance Rs = {:.1} ohm, input capacitance = {:.1} fF",
        cell.on_resistance(),
        cell.input_capacitance() * 1e15
    );

    // 3. Run the effective-capacitance modelling flow.
    let case = AnalysisCase::new(&cell, &line, ff(10.0), ps(100.0));
    let modeler = DriverOutputModeler::new(ModelingConfig::default());
    let model = modeler.model(&case)?;
    println!("model: {}", model.describe());
    println!("  inductance screening: {}", model.criteria.summary());
    println!(
        "  predicted driver-output delay = {:.1} ps, slew = {:.1} ps",
        model.delay() * 1e12,
        model.slew() * 1e12
    );

    // 4. Cross-check against the golden transient simulation.
    let golden = GoldenWaveforms::simulate(&case, &GoldenOptions::default())?;
    println!(
        "  simulated driver-output delay = {:.1} ps, slew = {:.1} ps",
        golden.near_delay()? * 1e12,
        golden.near_slew()? * 1e12
    );

    // 5. Propagate the modelled waveform to the far end of the line.
    let far = FarEndResponse::from_model(&model, &line, ff(10.0), &Default::default())?;
    println!(
        "  far-end delay (model-driven) = {:.1} ps, far-end slew = {:.1} ps, overshoot = {:.2} V",
        far.delay_from_input * 1e12,
        far.slew * 1e12,
        far.overshoot
    );
    Ok(())
}
