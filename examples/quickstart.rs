//! Quickstart: model the driver output of one on-chip RLC net through the
//! `TimingEngine` facade.
//!
//! This walks the full paper flow on the flagship case (a 5 mm, 1.6 µm global
//! wire driven by a 75X inverter): extract the parasitics, characterize the
//! driver, describe the net as a `Stage`, analyze it with the analytic
//! effective-capacitance backend, cross-check the same stage on the golden
//! transient-simulation backend, and propagate the modelled waveform to the
//! far end of the line.
//!
//! Run with: `cargo run --release --example quickstart`

use rlc_ceff_suite::{BackendChoice, DistributedRlcLoad, EngineConfig, Stage, TimingEngine};

use rlc_ceff_suite::ceff::far_end::FarEndOptions;
use rlc_ceff_suite::charlib::{CharacterizationGrid, Library};
use rlc_ceff_suite::interconnect::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Extract the line parasitics for a 5 mm x 1.6 um top-metal wire.
    let geometry = WireGeometry::new(mm(5.0), um(1.6));
    let line = EmpiricalExtractor::cmos018().extract(&geometry);
    println!("wire {geometry}: {line}");
    println!(
        "  Z0 = {:.1} ohm, time of flight = {:.1} ps",
        line.characteristic_impedance(),
        line.time_of_flight() * 1e12
    );

    // 2. Characterize the 75X driver (a few dozen transient simulations).
    println!("characterizing the 75X driver ...");
    let mut library = Library::new(CharacterizationGrid::default());
    let cell = library.cell_shared(75.0)?;
    println!(
        "  on-resistance Rs = {:.1} ohm, input capacitance = {:.1} fF",
        cell.on_resistance(),
        cell.input_capacitance() * 1e15
    );

    // 3. Describe the net as a stage and run the analytic backend.
    let load = DistributedRlcLoad::new(line, ff(10.0))?;
    let stage = Stage::builder(cell.clone(), load)
        .label("flagship")
        .input_slew(ps(100.0))
        .build()?;
    let engine = TimingEngine::new(EngineConfig::default());
    let report = engine.analyze(&stage)?;
    println!("model: {}", report.waveform.describe());
    if let Some(details) = &report.analytic {
        println!("  inductance screening: {}", details.criteria.summary());
    }
    println!(
        "  predicted driver-output delay = {:.1} ps, slew = {:.1} ps",
        report.delay * 1e12,
        report.slew * 1e12
    );

    // 4. Cross-check the same stage on the golden simulation backend.
    let golden_stage = Stage::builder(cell, DistributedRlcLoad::new(line, ff(10.0))?)
        .label("flagship-golden")
        .input_slew(ps(100.0))
        .backend(BackendChoice::Spice)
        .build()?;
    let golden = engine.analyze(&golden_stage)?;
    println!(
        "  simulated driver-output delay = {:.1} ps, slew = {:.1} ps",
        golden.delay * 1e12,
        golden.slew * 1e12
    );

    // 5. Propagate the modelled waveform to the far end of the line.
    let far = report.far_end(
        &DistributedRlcLoad::new(line, ff(10.0))?,
        &FarEndOptions::default(),
    )?;
    println!(
        "  far-end delay (model-driven) = {:.1} ps, far-end slew = {:.1} ps, overshoot = {:.2} V",
        far.delay_from_input * 1e12,
        far.slew * 1e12,
        far.overshoot
    );
    Ok(())
}
