//! Quickstart: model the driver output of one on-chip RLC net through the
//! `TimingEngine` facade.
//!
//! This walks the full paper flow on the flagship case (a 5 mm, 1.6 µm global
//! wire driven by a 75X inverter): extract the parasitics, characterize the
//! driver, describe the net as a `Stage`, analyze it with the analytic
//! effective-capacitance backend, cross-check the same stage on the golden
//! transient-simulation backend, and propagate the modelled waveform to the
//! far end of the line.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Set `RLC_CACHE_DIR=target/char-cache` to persist the driver
//! characterization: the second run then reports zero characterizations and
//! starts warm from the on-disk cache.

use rlc_ceff_suite::{BackendChoice, DistributedRlcLoad, EngineConfig, Stage, TimingEngine};

use rlc_ceff_suite::ceff::far_end::FarEndOptions;
use rlc_ceff_suite::interconnect::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Extract the line parasitics for a 5 mm x 1.6 um top-metal wire.
    let geometry = WireGeometry::new(mm(5.0), um(1.6));
    let line = EmpiricalExtractor::cmos018().extract(&geometry);
    println!("wire {geometry}: {line}");
    println!(
        "  Z0 = {:.1} ohm, time of flight = {:.1} ps",
        line.characteristic_impedance(),
        line.time_of_flight() * 1e12
    );

    // 2. Configure the engine. Setting RLC_CACHE_DIR opts into the
    //    persistent characterization cache: the first run pays the
    //    characterization transients, every later run (in any process
    //    sharing the directory) warm-starts from disk.
    let mut config = EngineConfig::builder();
    if let Ok(dir) = std::env::var("RLC_CACHE_DIR") {
        println!("using characterization cache at {dir}");
        config = config.cache_dir(dir);
    }
    let engine = TimingEngine::new(config.build());

    // 3. Characterize the 75X driver (a few dozen transient simulations on a
    //    cold start; zero with a warm cache).
    println!("characterizing the 75X driver ...");
    let mut library = engine.open_library()?;
    let cell = library.get_or_characterize(75.0)?;
    println!(
        "  on-resistance Rs = {:.1} ohm, input capacitance = {:.1} fF",
        cell.on_resistance(),
        cell.input_capacitance() * 1e15
    );
    println!(
        "  characterizations run: {} (disk cache hits: {})",
        library.characterizations_run(),
        library.disk_cache_hits()
    );

    // 4. Describe the net as a stage and run the analytic backend.
    let load = DistributedRlcLoad::new(line, ff(10.0))?;
    let stage = Stage::builder(cell.clone(), load)
        .label("flagship")
        .input_slew(ps(100.0))
        .build()?;
    let report = engine.analyze(&stage)?;
    println!("model: {}", report.waveform.describe());
    if let Some(details) = &report.analytic {
        println!("  inductance screening: {}", details.criteria.summary());
    }
    println!(
        "  predicted driver-output delay = {:.1} ps, slew = {:.1} ps",
        report.delay * 1e12,
        report.slew * 1e12
    );

    // 5. Cross-check the same stage on the golden simulation backend.
    let golden_stage = Stage::builder(cell, DistributedRlcLoad::new(line, ff(10.0))?)
        .label("flagship-golden")
        .input_slew(ps(100.0))
        .backend(BackendChoice::Spice)
        .build()?;
    let golden = engine.analyze(&golden_stage)?;
    println!(
        "  simulated driver-output delay = {:.1} ps, slew = {:.1} ps",
        golden.delay * 1e12,
        golden.slew * 1e12
    );

    // 6. Propagate the modelled waveform to the far end of the line.
    let far = report.far_end(
        &DistributedRlcLoad::new(line, ff(10.0))?,
        &FarEndOptions::default(),
    )?;
    println!(
        "  far-end delay (model-driven) = {:.1} ps, far-end slew = {:.1} ps, overshoot = {:.2} V",
        far.delay_from_input * 1e12,
        far.slew * 1e12,
        far.overshoot
    );

    // 7. Chain a second stage off that far end with an `AnalysisSession`:
    //    the receiver's driver sees the measured far-end waveform as its
    //    input event — no manual slew bookkeeping.
    let mut session = engine.session();
    let first = session.submit(stage)?;
    let second = session.submit(
        Stage::builder(
            library.get_or_characterize(75.0)?,
            DistributedRlcLoad::new(line, ff(10.0))?,
        )
        .label("repeater")
        .input_from(first)
        .build()?,
    )?;
    for (handle, outcome) in session.reports() {
        let chained = outcome?;
        println!(
            "  session stage '{}' (#{}) delay = {:.1} ps, slew = {:.1} ps",
            chained.label,
            handle.index(),
            chained.delay * 1e12,
            chained.slew * 1e12
        );
    }
    let _ = second;
    Ok(())
}
