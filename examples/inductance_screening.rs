//! Inductance screening: which nets in a design actually need RLC treatment?
//!
//! Static timing flows cannot afford the two-ramp machinery (or a full RLC
//! reduced-order model) on every net, so the paper's Equation 9 criteria are
//! used as a cheap screen. This example sweeps wire width and driver strength
//! for a fixed 4 mm route and prints the full criteria report for each
//! combination — reproducing the paper's observation that inductive effects
//! matter for wires at least ~1.6 µm wide driven by 75X-or-larger buffers.
//!
//! Run with: `cargo run --release --example inductance_screening`

use rlc_ceff::prelude::*;
use rlc_charlib::prelude::*;
use rlc_interconnect::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let widths_um = [0.8, 1.2, 1.6, 2.0, 2.5, 3.0];
    let drivers = [25.0, 50.0, 75.0, 100.0, 125.0];
    let length = mm(4.0);
    let input_slew = ps(100.0);

    let extractor = EmpiricalExtractor::cmos018();
    let mut library = Library::new(CharacterizationGrid::default());
    for &d in &drivers {
        let _ = library.cell(d)?;
    }
    let modeler = DriverOutputModeler::new(ModelingConfig::default());

    println!("4 mm route, 100 ps input slew; table entries: criteria verdict (f, Tr1/2tf)");
    print!("{:>10}", "width\\drv");
    for &d in &drivers {
        print!("{:>16}", format!("{d:.0}X"));
    }
    println!();

    for &w in &widths_um {
        let line = extractor.extract(&WireGeometry::new(length, um(w)));
        print!("{:>8}um", format!("{w:.1}"));
        for &d in &drivers {
            let cell = library.cell(d)?.clone();
            let case = AnalysisCase::new(&cell, &line, cell.input_capacitance(), input_slew);
            let model = modeler.model(&case)?;
            let tr1_over_2tf = model.ceff1.ramp_time / (2.0 * line.time_of_flight());
            let verdict = if model.criteria.inductance_significant() {
                "RLC"
            } else {
                "rc"
            };
            print!(
                "{:>16}",
                format!("{verdict} ({:.2},{:.2})", model.breakpoint, tr1_over_2tf)
            );
        }
        println!();
    }
    println!();
    println!("RLC  = all four Equation-9 checks pass: use the two-ramp driver model");
    println!("rc   = at least one check fails: a single effective capacitance suffices");
    println!("(f = Z0/(Z0+Rs) breakpoint; Tr1/2tf = output rise time vs. round-trip flight time)");
    Ok(())
}
