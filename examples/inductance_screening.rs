//! Inductance screening: which nets in a design actually need RLC treatment?
//!
//! Static timing flows cannot afford the two-ramp machinery (or a full RLC
//! reduced-order model) on every net, so the paper's Equation 9 criteria are
//! used as a cheap screen. This example sweeps wire width and driver strength
//! for a fixed 4 mm route — the whole sweep is one `AnalysisSession` of
//! independent stages — and prints the criteria verdict for each
//! combination, reproducing the paper's observation that inductive effects
//! matter for wires at least ~1.6 µm wide driven by 75X-or-larger buffers.
//!
//! Run with: `cargo run --release --example inductance_screening`

use rlc_ceff_suite::{DistributedRlcLoad, EngineConfig, Stage, TimingEngine};

use rlc_ceff_suite::charlib::{CharacterizationGrid, Library};
use rlc_ceff_suite::interconnect::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let widths_um = [0.8, 1.2, 1.6, 2.0, 2.5, 3.0];
    let drivers = [25.0, 50.0, 75.0, 100.0, 125.0];
    let length = mm(4.0);
    let input_slew = ps(100.0);

    let extractor = EmpiricalExtractor::cmos018();
    let mut library = Library::new(CharacterizationGrid::default());
    for &d in &drivers {
        let _ = library.cell(d)?;
    }

    // One stage per (width, driver) cell of the table.
    let mut stages = Vec::new();
    let mut flight_times = Vec::new();
    for &w in &widths_um {
        let line = extractor.extract(&WireGeometry::new(length, um(w)));
        for &d in &drivers {
            let cell = library.cell_shared(d)?;
            let c_load = cell.input_capacitance();
            flight_times.push(line.time_of_flight());
            stages.push(
                Stage::builder(cell, DistributedRlcLoad::new(line, c_load)?)
                    .label(format!("{w:.1}um/{d:.0}X"))
                    .input_slew(input_slew)
                    .build()?,
            );
        }
    }

    let engine = TimingEngine::new(EngineConfig::default());
    let mut session = engine.session();
    session.submit_all(stages)?;
    let outcomes = session.wait_all();
    println!("4 mm route, 100 ps input slew; table entries: criteria verdict (f, Tr1/2tf)");
    println!(
        "({} stages, {} ok)",
        outcomes.len(),
        outcomes.iter().filter(|(_, r)| r.is_ok()).count()
    );
    print!("{:>10}", "width\\drv");
    for &d in &drivers {
        print!("{:>16}", format!("{d:.0}X"));
    }
    println!();

    for (wi, &w) in widths_um.iter().enumerate() {
        print!("{:>8}um", format!("{w:.1}"));
        for di in 0..drivers.len() {
            let index = wi * drivers.len() + di;
            // wait_all returns results in submission order: the handle at
            // `index` is the (width, driver) cell of the table.
            let report = match &outcomes[index].1 {
                Ok(report) => report,
                Err(e) => {
                    print!("{:>16}", format!("error: {e}"));
                    continue;
                }
            };
            let details = report.analytic.as_ref().expect("analytic backend");
            let tr1_over_2tf = details.ceff1.ramp_time / (2.0 * flight_times[index]);
            let verdict = if report.used_two_ramp { "RLC" } else { "rc" };
            print!(
                "{:>16}",
                format!("{verdict} ({:.2},{:.2})", details.breakpoint, tr1_over_2tf)
            );
        }
        println!();
    }
    println!();
    println!("RLC  = all four Equation-9 checks pass: use the two-ramp driver model");
    println!("rc   = at least one check fails: a single effective capacitance suffices");
    println!("(f = Z0/(Z0+Rs) breakpoint; Tr1/2tf = output rise time vs. round-trip flight time)");
    Ok(())
}
