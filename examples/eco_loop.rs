//! Incremental re-analysis (ECO loop): a persistent stage-result cache plus
//! dependency-cone change propagation.
//!
//! An engineering change order (ECO) touches a handful of nets late in the
//! flow; re-running full-chip timing for a one-net edit wastes almost all of
//! the work. With [`EngineConfig::result_cache_dir`] set, every analyzed
//! stage is persisted under a content-addressed key — driver cell, load
//! topology, input identity (the *producer's* key for dependent stages, so
//! identity chains transitively down the path), and every result-affecting
//! engine knob. A later session replays hits from disk and re-simulates
//! exactly the dependency cone downstream of whatever changed.
//!
//! This example analyzes a 16-stage repeater path three times through one
//! cache directory:
//!
//! 1. **cold** — empty cache, all 16 stages simulate;
//! 2. **ECO** — the receiver pin cap of `stage08` is doubled; only that
//!    stage and its downstream cone (stages 8–15) re-simulate, the 8
//!    upstream stages replay from the cache;
//! 3. **warm** — the edited design re-analyzed unchanged: zero simulations.
//!
//! Replayed reports are bit-identical to a cold run: delays, slews and the
//! driver-output waveform parameters are stored as raw `f64` bits, and
//! derived quantities (far-end handoffs) recompute deterministically.
//!
//! Run with: `cargo run --release --example eco_loop`
//! (the cache lives in `target/eco-result-cache`; delete it to force cold)

use rlc_ceff_suite::interconnect::prelude::*;
use rlc_ceff_suite::{DistributedRlcLoad, EngineConfig, Stage, TimingEngine};

const STAGES: usize = 16;
const EDITED_STAGE: usize = 8;

/// Builds and analyzes the 16-stage path; `edited` applies the ECO (a
/// doubled receiver cap on `stage08`). Returns (stages simulated, cache
/// hits, path delay in seconds).
fn analyze_path(
    engine: &TimingEngine,
    edited: bool,
) -> Result<(u64, u64, f64), Box<dyn std::error::Error>> {
    // The synthetic fixture cell keeps the example fast and deterministic;
    // a real flow would characterize cells via `engine.open_library()`.
    let cell = rlc_ceff_suite::fixtures::synthetic_cell_75x();
    let extractor = EmpiricalExtractor::cmos018();

    let mut session = engine.session();
    let mut previous = None;
    let mut handles = Vec::with_capacity(STAGES);
    for i in 0..STAGES {
        // Every net is distinct (length and receiver cap vary per stage), so
        // each stage has its own cache identity.
        let line = extractor.extract(&WireGeometry::new(mm(0.5 + 0.1 * i as f64), um(0.8)));
        let c_load = if edited && i == EDITED_STAGE {
            ff(2.0 * (10.0 + i as f64))
        } else {
            ff(10.0 + i as f64)
        };
        let builder = Stage::builder(cell.clone(), DistributedRlcLoad::new(line, c_load)?)
            .label(format!("stage{i:02}"));
        let builder = match previous {
            None => builder.input_slew(ps(100.0)),
            Some(handle) => builder.input_from(handle),
        };
        let handle = session.submit(builder.build()?)?;
        handles.push(handle);
        previous = Some(handle);
    }

    let results = session.wait_all();
    let first_t50 = results[0].1.as_ref().map(|r| r.input_t50).unwrap_or(0.0);
    let mut path_delay = 0.0;
    for (handle, outcome) in &results {
        let report = outcome
            .as_ref()
            .map_err(|e| format!("stage {} failed: {e}", handle.index()))?;
        path_delay = (report.input_t50 - first_t50) + report.delay;
    }
    Ok((
        session.stages_simulated(),
        session.result_cache_hits(),
        path_delay,
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache_dir = std::env::var("RLC_RESULT_CACHE_DIR")
        .unwrap_or_else(|_| "target/eco-result-cache".to_string());
    let engine = TimingEngine::new(EngineConfig::builder().result_cache_dir(&cache_dir).build());
    println!("ECO loop over a {STAGES}-stage repeater path (result cache: {cache_dir})");
    println!();

    let passes: [(&str, bool); 3] = [
        ("pass 1 (cold)", false),
        ("pass 2 (ECO: stage08 receiver cap doubled)", true),
        ("pass 3 (warm re-analysis of the edited design)", true),
    ];
    for (name, edited) in passes {
        let (simulated, hits, path_delay) = analyze_path(&engine, edited)?;
        println!(
            "{name}: stages re-simulated: {simulated}/{STAGES} (cache hits: {hits}), \
             path delay: {:.3} ps",
            path_delay * 1e12
        );
    }
    println!();
    println!("The edit invalidates exactly its dependency cone: the 8 upstream stages");
    println!("replay from disk, and the fully-warm third pass touches no backend at all.");
    Ok(())
}
