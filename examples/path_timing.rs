//! Path timing: chain a 4-stage inverter path through an `AnalysisSession`.
//!
//! The paper models one driver/interconnect stage; timing a *path* composes
//! stages — the waveform measured at one stage's far end is the input event
//! of the next driver. This example builds a 4-stage repeater path whose
//! nets exercise the whole topology IR:
//!
//! 1. `launch`  — 75X driver on the paper's 5 mm RLC line,
//! 2. `fork`    — 75X driver on a branching RLC tree (handoff continues
//!    from the *critical* sink `rx_far`),
//! 3. `bus`     — 100X driver on a coupled two-line bus with an
//!    opposite-switching aggressor (handoff from the victim far end),
//! 4. `capture` — 50X driver on a lumped receiver load.
//!
//! Each dependent stage declares its input as `input_from` /
//! `input_from_sink`; the session schedules the chain topologically, runs
//! the far-end propagation for every handoff, and streams per-stage reports
//! as they complete. The table prints per-stage delay/slew plus the
//! cumulative path delay (the running input-t50 offset from the primary
//! input), which is what a signoff flow would compare against a clock
//! period.
//!
//! Run with: `cargo run --release --example path_timing`

use rlc_ceff_suite::interconnect::prelude::*;
use rlc_ceff_suite::interconnect::{CoupledBus, RlcTree};
use rlc_ceff_suite::{
    AggressorSpec, AggressorSwitching, CoupledBusLoad, DistributedRlcLoad, EngineConfig,
    LumpedCapLoad, RlcTreeLoad, Stage, TimingEngine,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let extractor = EmpiricalExtractor::cmos018();

    // Characterize the three repeater sizes (warm-started from disk when
    // RLC_CACHE_DIR is set, like the quickstart).
    let mut config = EngineConfig::builder();
    if let Ok(dir) = std::env::var("RLC_CACHE_DIR") {
        config = config.cache_dir(dir);
    }
    let engine = TimingEngine::new(config.build());
    let mut library = engine.open_library()?;
    let strong = library.get_or_characterize(75.0)?;
    let wide = library.get_or_characterize(100.0)?;
    let receiver = library.get_or_characterize(50.0)?;

    // Net 1: the paper's flagship 5 mm / 1.6 um line.
    let line = extractor.extract(&WireGeometry::new(mm(5.0), um(1.6)));
    let launch_load = DistributedRlcLoad::new(line, ff(10.0))?;

    // Net 2: a forked tree — 2 mm trunk into a 1 mm and a 3 mm branch.
    let trunk = extractor.extract(&WireGeometry::new(mm(2.0), um(0.8)));
    let short_branch = extractor.extract(&WireGeometry::new(mm(1.0), um(0.8)));
    let long_branch = extractor.extract(&WireGeometry::new(mm(3.0), um(0.8)));
    let mut tree = RlcTree::new();
    let t = tree.add_branch(None, trunk);
    let near = tree.add_branch(Some(t), short_branch);
    let far = tree.add_branch(Some(t), long_branch);
    tree.set_sink(near, "rx_near", ff(15.0));
    tree.set_sink(far, "rx_far", ff(15.0));
    let fork_load = RlcTreeLoad::new(tree)?;

    // Net 3: a coupled two-line bus (4 mm), worst-case aggressor.
    let bus_line = extractor.extract(&WireGeometry::new(mm(4.0), um(1.6)));
    let bus = CoupledBus::symmetric(
        bus_line,
        0.3 * bus_line.capacitance(),
        0.2 * bus_line.inductance(),
        ff(10.0),
    );
    let bus_load = CoupledBusLoad::new(
        bus,
        AggressorSpec::new(
            AggressorSwitching::OppositeDirection,
            ps(100.0),
            ps(50.0),
            1.8,
        )?,
    )?;

    // Net 4: the captured receiver pin.
    let capture_load = LumpedCapLoad::new(ff(200.0))?;

    // Wire the path: each stage's input is the previous stage's measured
    // far end; the session runs the chain topologically and streams results.
    let mut session = engine.session();
    let launch = session.submit(
        Stage::builder(strong.clone(), launch_load)
            .label("launch")
            .input_slew(ps(100.0))
            .build()?,
    )?;
    let fork = session.submit(
        Stage::builder(strong, fork_load)
            .label("fork")
            .input_from(launch)
            .build()?,
    )?;
    let bus_stage = session.submit(
        Stage::builder(wide, bus_load)
            .label("bus")
            .input_from_sink(fork, "rx_far")
            .build()?,
    )?;
    let capture = session.submit(
        Stage::builder(receiver, capture_load)
            .label("capture")
            .input_from_sink(bus_stage, "victim")
            .build()?,
    )?;
    let _ = capture;

    println!("4-stage path through an AnalysisSession:");
    println!();
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>16}",
        "stage", "delay(ps)", "slew(ps)", "input t50(ps)", "cumulative(ps)"
    );

    let results = session.wait_all();
    let launch_t50 = results[launch.index()]
        .1
        .as_ref()
        .map(|r| r.input_t50)
        .unwrap_or(0.0);
    let mut path_delay = 0.0;
    for (handle, outcome) in &results {
        let report = match outcome {
            Ok(report) => report,
            Err(error) => {
                eprintln!("stage #{} failed: {error}", handle.index());
                continue;
            }
        };
        // Cumulative path delay: from the primary input's 50% crossing to
        // this stage's driver-output 50% crossing.
        let cumulative = (report.input_t50 - launch_t50) + report.delay;
        path_delay = cumulative;
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>14.1} {:>16.1}",
            report.label,
            report.delay * 1e12,
            report.slew * 1e12,
            report.input_t50 * 1e12,
            cumulative * 1e12
        );
    }
    println!();
    println!(
        "path delay (launch input 50% -> capture driver output 50%): {:.1} ps",
        path_delay * 1e12
    );
    println!("Each handoff converts the measured far-end waveform into the next driver's");
    println!("input event (slew-referenced ramp, or the sampled waveform itself for");
    println!("backends that negotiate BackendCaps::sampled_input).");
    Ok(())
}
