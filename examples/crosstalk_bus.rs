//! Crosstalk on a coupled two-line bus: how much does the aggressor's
//! switching direction move the victim's far-end timing?
//!
//! Two copies of the paper's 5 mm line run side by side, coupled by a
//! distributed coupling capacitance and a mutual inductance. The victim is
//! driven by a characterized 75X inverter through the `TimingEngine`; the
//! aggressor is an ideal ramp whose direction is swept — same direction as
//! the victim, quiet, and opposite — by overriding the shared bus load's
//! aggressor per stage with `StageBuilder::aggressor`. The victim delay
//! push-out between the best and worst case is the crosstalk window a
//! signoff flow must margin for, and the quiet-aggressor run shows the
//! coupled noise instead.
//!
//! Run with: `cargo run --release --example crosstalk_bus`

use rlc_ceff_suite::ceff::far_end::FarEndOptions;
use rlc_ceff_suite::charlib::{CharacterizationGrid, Library};
use rlc_ceff_suite::interconnect::prelude::*;
use rlc_ceff_suite::{
    AggressorSpec, AggressorSwitching, CoupledBusLoad, EngineConfig, Stage, TimingEngine,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's 5 mm / 1.6 um line, twice, with ~30% capacitive coupling
    // and a mutual inductance at k ~ 0.2 — a plausible neighbouring-track
    // geometry.
    let line = EmpiricalExtractor::cmos018().extract(&WireGeometry::new(mm(5.0), um(1.6)));
    let coupling_c = 0.3 * line.capacitance();
    let mutual_l = 0.2 * line.inductance();
    let bus = CoupledBus::symmetric(line, coupling_c, mutual_l, ff(10.0));

    let mut library = Library::new(CharacterizationGrid::default());
    let cell = library.cell_shared(75.0)?;
    let engine = TimingEngine::new(EngineConfig::default());
    let far_opts = FarEndOptions::default();

    println!("{bus}");
    println!("victim: 75X driver, 100 ps input slew; aggressor: ideal 100 ps ramp");
    println!();
    println!(
        "{:<22} {:>14} {:>14} {:>14} {:>16}",
        "aggressor", "victim delay", "victim slew", "agg delay", "agg peak noise"
    );

    // One shared bus load; each stage swaps in its own aggressor scenario
    // through the builder (validated to only apply to coupled loads).
    let base_load = CoupledBusLoad::new(bus, AggressorSpec::quiet(1.8)?)?;

    let mut victim_delays = Vec::new();
    for (name, switching) in [
        ("same direction", AggressorSwitching::SameDirection),
        ("quiet", AggressorSwitching::Quiet),
        ("opposite", AggressorSwitching::OppositeDirection),
    ] {
        let stage = Stage::builder(cell.clone(), base_load.clone())
            .label(name)
            .input_slew(ps(100.0))
            .aggressor(AggressorSpec::new(switching, ps(100.0), ps(20.0), 1.8)?)
            .build()?;
        let report = engine.analyze(&stage)?;
        let sinks = report.far_end_sinks(stage.load(), &far_opts)?;
        let victim = sinks
            .iter()
            .find(|s| s.sink == "victim")
            .expect("bus exposes the victim sink");
        let aggressor = sinks
            .iter()
            .find(|s| s.sink == "aggressor")
            .expect("bus exposes the aggressor sink");

        let fmt_ps = |v: Option<f64>| match v {
            Some(t) => format!("{:.1} ps", t * 1e12),
            None => "—".to_string(),
        };
        println!(
            "{:<22} {:>14} {:>14} {:>14} {:>13.0} mV",
            name,
            fmt_ps(victim.delay_from_input),
            fmt_ps(victim.slew),
            fmt_ps(aggressor.delay_from_input),
            aggressor.peak_noise * 1e3
        );
        victim_delays.push(victim.delay_from_input.expect("victim always switches"));
    }

    let push_out = victim_delays[2] - victim_delays[0];
    println!();
    println!(
        "crosstalk window: {:.1} ps victim push-out between same-direction and \
         opposite-direction aggressor switching",
        push_out * 1e12
    );
    println!("A quiet aggressor leaves the victim between the two extremes and instead");
    println!("picks up the coupled noise bump shown in the last column.");
    Ok(())
}
