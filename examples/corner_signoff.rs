//! Statistical signoff: sweep a 4-stage repeater path across process
//! corners and Monte-Carlo samples in one call.
//!
//! This reuses the `path_timing` topology (flagship line, forked tree,
//! coupled bus, captured receiver) but instead of one nominal analysis it
//! runs the whole path at every entry of a *variation plan*:
//!
//! * three explicit corners — typical, slow (high R/C, low supply, hot) and
//!   fast (low R/C, high supply), and
//! * 64 seeded Monte-Carlo draws around nominal
//!   ([`rlc_ceff_suite::VariationModel`]).
//!
//! `TimingEngine::analyze_path_distribution` revalues every stage's driver
//! and load at each sample (one global process condition per sample),
//! schedules all `samples x stages` analyses across one session's thread
//! pool, and chains handoffs corner-consistently: sample *i* of a stage
//! always consumes the far end of sample *i* of its producer. The result is
//! one [`rlc_ceff_suite::DistributionReport`] per stage — mean/sigma and
//! p50/p95/p99 delay and slew, plus the worst-sample witness a signoff flow
//! escalates. The same seed always reproduces the same report, bit for bit.
//!
//! Run with: `cargo run --release --example corner_signoff`

use rlc_ceff_suite::interconnect::prelude::*;
use rlc_ceff_suite::interconnect::RlcTree;
use rlc_ceff_suite::{
    DistributedRlcLoad, EngineConfig, LumpedCapLoad, RlcTreeLoad, Stage, TimingEngine,
    VariationModel, VariationSpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let extractor = EmpiricalExtractor::cmos018();

    let mut config = EngineConfig::builder();
    if let Ok(dir) = std::env::var("RLC_CACHE_DIR") {
        config = config.cache_dir(dir);
    }
    let engine = TimingEngine::new(config.build());
    let mut library = engine.open_library()?;
    let strong = library.get_or_characterize(75.0)?;
    let receiver = library.get_or_characterize(50.0)?;

    // The three signoff corners plus a Monte-Carlo cloud around nominal.
    let typical = VariationSpec::nominal();
    let slow = VariationSpec::nominal()
        .with_r_scale(1.15)
        .with_c_scale(1.10)
        .with_source_scale(0.95)
        .with_temperature_delta(60.0);
    let fast = VariationSpec::nominal()
        .with_r_scale(0.87)
        .with_c_scale(0.93)
        .with_source_scale(1.05);
    let model = VariationModel::default().with_temperature_delta(25.0);

    // Net 1 (the head carries the plan): the paper's flagship 5 mm line.
    let line = extractor.extract(&WireGeometry::new(mm(5.0), um(1.6)));
    let launch = Stage::builder(strong.clone(), DistributedRlcLoad::new(line, ff(10.0))?)
        .label("launch")
        .input_slew(ps(100.0))
        .corners([typical, slow, fast])
        .monte_carlo(64, 0x5eed, model)
        .build()?;

    // Net 2: a forked tree. Later stages declare placeholder inputs — the
    // path sweep rewires each sample to its producer's matching sample.
    let trunk = extractor.extract(&WireGeometry::new(mm(2.0), um(0.8)));
    let short_branch = extractor.extract(&WireGeometry::new(mm(1.0), um(0.8)));
    let long_branch = extractor.extract(&WireGeometry::new(mm(3.0), um(0.8)));
    let mut tree = RlcTree::new();
    let t = tree.add_branch(None, trunk);
    let near = tree.add_branch(Some(t), short_branch);
    let far = tree.add_branch(Some(t), long_branch);
    tree.set_sink(near, "rx_near", ff(15.0));
    tree.set_sink(far, "rx_far", ff(15.0));
    let fork = Stage::builder(strong.clone(), RlcTreeLoad::new(tree)?)
        .label("fork")
        .input_slew(ps(100.0))
        .build()?;

    // Net 3: a 4 mm point-to-point line into the captured receiver.
    let bus_line = extractor.extract(&WireGeometry::new(mm(4.0), um(1.6)));
    let repeat = Stage::builder(strong, DistributedRlcLoad::new(bus_line, ff(10.0))?)
        .label("repeat")
        .input_slew(ps(100.0))
        .build()?;

    // Net 4: the captured receiver pin.
    let capture = Stage::builder(receiver, LumpedCapLoad::new(ff(200.0))?)
        .label("capture")
        .input_slew(ps(100.0))
        .build()?;

    let path = [launch, fork, repeat, capture];
    let num_samples = path[0].variation_samples().len();
    println!(
        "corner + Monte-Carlo signoff: {} samples x {} stages through one session",
        num_samples,
        path.len()
    );
    println!();

    let reports = engine.analyze_path_distribution(&path)?;
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "stage", "mean(ps)", "sigma(ps)", "p99(ps)", "max(ps)", "worst sample"
    );
    for report in &reports {
        let (index, worst) = report.worst_sample();
        println!(
            "{:<10} {:>10.1} {:>10.2} {:>10.1} {:>10.1} {:>12}",
            report.label(),
            report.delay().mean * 1e12,
            report.delay().std_dev * 1e12,
            report.delay().p99 * 1e12,
            report.delay().max * 1e12,
            format!("#{index}"),
        );
        let _ = worst;
    }

    // The witness: which process condition produced the worst capture delay,
    // and what the cumulative p99 path delay is.
    let capture_report = reports.last().expect("one report per stage");
    let (index, worst) = capture_report.worst_sample();
    let kind = if index == 0 {
        "typical corner".to_string()
    } else if index == 1 {
        "slow corner".to_string()
    } else if index == 2 {
        "fast corner".to_string()
    } else {
        format!("Monte-Carlo draw #{}", index - 3)
    };
    println!();
    println!(
        "worst capture sample: #{index} ({kind}) — delay {:.1} ps at \
         r x {:.3}, c x {:.3}, vdd x {:.3}",
        worst.delay * 1e12,
        worst.spec.r_scale,
        worst.spec.c_scale,
        worst.spec.source_scale,
    );
    let p99_path: f64 = reports.iter().map(|r| r.delay().p99).sum();
    println!(
        "sum of per-stage p99 delays (pessimistic bound): {:.1} ps",
        p99_path * 1e12
    );
    println!();
    for report in &reports {
        println!("{}", report.describe());
    }
    Ok(())
}
