//! Far-end signoff: how much does the driver-output model matter for the
//! timing seen by the receiving gate?
//!
//! The driver-output waveform is only an intermediate product — what a timing
//! tool ultimately propagates is the waveform at the far end of the line.
//! This example compares, for one inductive net, the far-end delay and slew
//! obtained from three driver models (the classic single-Ceff ramp, the
//! paper's two-ramp waveform, and the golden transistor-level simulation) so
//! the error introduced by each abstraction is visible where it matters.
//!
//! Run with: `cargo run --release --example far_end_signoff`

use rlc_ceff::far_end::{FarEndOptions, FarEndResponse};
use rlc_ceff::prelude::*;
use rlc_ceff::validation::GoldenOptions;
use rlc_charlib::prelude::*;
use rlc_interconnect::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 6 (right) case: 4 mm / 0.8 um line, 75X driver,
    // 50 ps input transition.
    let line = EmpiricalExtractor::cmos018().extract(&WireGeometry::new(mm(4.0), um(0.8)));
    let mut library = Library::new(CharacterizationGrid::default());
    let cell = library.cell(75.0)?.clone();
    let c_load = cell.input_capacitance();
    let case = AnalysisCase::new(&cell, &line, c_load, ps(50.0));

    let modeler = DriverOutputModeler::new(ModelingConfig::default());
    let two_ramp = modeler.model_two_ramp(&case)?;
    let one_ramp = modeler.model_single_ramp(&case)?;

    let far_opts = FarEndOptions::default();
    let far_two = FarEndResponse::from_model(&two_ramp, &line, c_load, &far_opts)?;
    let far_one = FarEndResponse::from_model(&one_ramp, &line, c_load, &far_opts)?;

    let golden = GoldenWaveforms::simulate(&case, &GoldenOptions::default())?;
    let sim_far_delay = golden.far_delay()?;
    let sim_far_slew = golden.far_slew()?;

    println!("net: {line}, 75X driver, 50 ps input slew, receiver load {:.1} fF", c_load * 1e15);
    println!();
    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>12}",
        "driver model", "far delay", "delay err", "far slew", "slew err"
    );
    let row = |name: &str, delay: f64, slew: f64| {
        println!(
            "{:<28} {:>9.1} ps {:>11.1}% {:>9.1} ps {:>11.1}%",
            name,
            delay * 1e12,
            (delay - sim_far_delay) / sim_far_delay * 100.0,
            slew * 1e12,
            (slew - sim_far_slew) / sim_far_slew * 100.0
        );
    };
    row("transistor-level (golden)", sim_far_delay, sim_far_slew);
    row("two-ramp Ceff (paper)", far_two.delay_from_input, far_two.slew);
    row("single-Ceff ramp (classic)", far_one.delay_from_input, far_one.slew);
    println!();
    println!(
        "far-end overshoot: golden {:.2} V, two-ramp-driven {:.2} V, one-ramp-driven {:.2} V",
        golden.far.overshoot(cell.vdd()),
        far_two.overshoot,
        far_one.overshoot
    );
    println!();
    println!("The two-ramp driver model keeps the far-end timing close to the transistor-level");
    println!("reference, while the classic single-Ceff ramp misses the reflection-dominated");
    println!("shape and skews both the delay and the transition time handed to the next stage.");
    Ok(())
}
