//! Far-end signoff: how much does the driver-output model matter for the
//! timing seen by the receiving gate?
//!
//! The driver-output waveform is only an intermediate product — what a timing
//! tool ultimately propagates is the waveform at the far end of the line.
//! This example analyzes one inductive net three ways through the facade —
//! the classic single-Ceff ramp, the paper's two-ramp waveform (both via the
//! analytic backend's strategy knob), and the golden transistor-level
//! simulation backend — so the error introduced by each abstraction is
//! visible where it matters.
//!
//! Run with: `cargo run --release --example far_end_signoff`

use rlc_ceff_suite::{
    BackendChoice, CeffStrategy, DistributedRlcLoad, EngineConfig, LoadModel, RlcTreeLoad, Stage,
    TimingEngine,
};

use rlc_ceff_suite::ceff::far_end::FarEndOptions;
use rlc_ceff_suite::charlib::{CharacterizationGrid, Library};
use rlc_ceff_suite::interconnect::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 6 (right) case: 4 mm / 0.8 um line, 75X driver,
    // 50 ps input transition.
    let line = EmpiricalExtractor::cmos018().extract(&WireGeometry::new(mm(4.0), um(0.8)));
    let mut library = Library::new(CharacterizationGrid::default());
    let cell = library.cell_shared(75.0)?;
    let c_load = cell.input_capacitance();
    let load = DistributedRlcLoad::new(line, c_load)?;

    let stage = |label: &str, backend: Option<BackendChoice>| {
        let mut builder = Stage::builder(cell.clone(), load)
            .label(label)
            .input_slew(ps(50.0));
        if let Some(b) = backend {
            builder = builder.backend(b);
        }
        builder.build()
    };

    let two_ramp_engine = TimingEngine::new(
        EngineConfig::builder()
            .strategy(CeffStrategy::ForceTwoRamp)
            .build(),
    );
    let one_ramp_engine = TimingEngine::new(
        EngineConfig::builder()
            .strategy(CeffStrategy::ForceSingleRamp)
            .build(),
    );

    let two_ramp = two_ramp_engine.analyze(&stage("two-ramp", None)?)?;
    let one_ramp = one_ramp_engine.analyze(&stage("one-ramp", None)?)?;
    let golden = two_ramp_engine.analyze(&stage("golden", Some(BackendChoice::Spice))?)?;

    let far_opts = FarEndOptions::default();
    let far_two = two_ramp.far_end(&load, &far_opts)?;
    let far_one = one_ramp.far_end(&load, &far_opts)?;

    // The golden far end comes straight out of the transistor-level
    // simulation the SPICE backend already ran.
    let golden_far = golden
        .simulated_far_end
        .as_ref()
        .expect("line load has a far end");
    let sim_far_delay = golden_far
        .waveform()
        .crossing_fraction(0.5, golden.vdd, true)
        .expect("golden far end crossed 50%")
        - golden.input_t50;
    let sim_far_slew = golden_far
        .waveform()
        .slew_10_90(golden.vdd, true)
        .expect("golden far end completed");

    println!(
        "net: {line}, 75X driver, 50 ps input slew, receiver load {:.1} fF",
        c_load * 1e15
    );
    println!();
    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>12}",
        "driver model", "far delay", "delay err", "far slew", "slew err"
    );
    let row = |name: &str, delay: f64, slew: f64| {
        println!(
            "{:<28} {:>9.1} ps {:>11.1}% {:>9.1} ps {:>11.1}%",
            name,
            delay * 1e12,
            (delay - sim_far_delay) / sim_far_delay * 100.0,
            slew * 1e12,
            (slew - sim_far_slew) / sim_far_slew * 100.0
        );
    };
    row("transistor-level (golden)", sim_far_delay, sim_far_slew);
    row(
        "two-ramp Ceff (paper)",
        far_two.delay_from_input,
        far_two.slew,
    );
    row(
        "single-Ceff ramp (classic)",
        far_one.delay_from_input,
        far_one.slew,
    );
    println!();
    println!(
        "far-end overshoot: golden {:.2} V, two-ramp-driven {:.2} V, one-ramp-driven {:.2} V",
        golden_far.waveform().overshoot(golden.vdd),
        far_two.overshoot,
        far_one.overshoot
    );
    println!();
    println!("The two-ramp driver model keeps the far-end timing close to the transistor-level");
    println!("reference, while the classic single-Ceff ramp misses the reflection-dominated");
    println!("shape and skews both the delay and the transition time handed to the next stage.");

    // The same signoff, but on a branching net: the line forks into a short
    // and a long receiver branch, and every sink is measured independently
    // through the topology-generic far-end path.
    let trunk = EmpiricalExtractor::cmos018().extract(&WireGeometry::new(mm(2.0), um(0.8)));
    let short_branch = EmpiricalExtractor::cmos018().extract(&WireGeometry::new(mm(1.0), um(0.8)));
    let long_branch = EmpiricalExtractor::cmos018().extract(&WireGeometry::new(mm(3.0), um(0.8)));
    let mut tree = RlcTree::new();
    let t = tree.add_branch(None, trunk);
    let near_rx = tree.add_branch(Some(t), short_branch);
    let far_rx = tree.add_branch(Some(t), long_branch);
    tree.set_sink(near_rx, "rx_near", c_load);
    tree.set_sink(far_rx, "rx_far", c_load);
    let tree_load = RlcTreeLoad::new(tree)?;

    let engine = TimingEngine::new(EngineConfig::default());
    let tree_stage = Stage::builder(cell.clone(), tree_load.clone())
        .label("forked net")
        .input_slew(ps(50.0))
        .build()?;
    let tree_report = engine.analyze(&tree_stage)?;
    println!();
    println!("forked net ({}):", tree_load.describe());
    for sink in tree_report.far_end_sinks(&tree_load, &far_opts)? {
        println!(
            "  sink {:<8} delay {:>7.1} ps, slew {:>7.1} ps",
            sink.sink,
            sink.delay_from_input.unwrap_or(f64::NAN) * 1e12,
            sink.slew.unwrap_or(f64::NAN) * 1e12
        );
    }
    println!("Per-sink far ends come from one simulation of the whole tree; the longer");
    println!("branch is the critical pin a signoff flow would propagate.");

    // Propagate it: a session chains a repeater off the critical sink
    // (`rx_far`), so the measured sink waveform becomes the next driver's
    // input event without any manual slew bookkeeping.
    let mut session = engine.session();
    let forked = session.submit(tree_stage)?;
    session.submit(
        Stage::builder(cell, DistributedRlcLoad::new(line, c_load)?)
            .label("repeater after rx_far")
            .input_from_sink(forked, "rx_far")
            .build()?,
    )?;
    println!();
    for (_, outcome) in session.reports() {
        let report = outcome?;
        println!(
            "  chained stage '{}': delay {:>7.1} ps, slew {:>7.1} ps (input t50 {:.1} ps)",
            report.label,
            report.delay * 1e12,
            report.slew * 1e12,
            report.input_t50 * 1e12
        );
    }
    Ok(())
}
