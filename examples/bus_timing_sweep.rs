//! Bus timing sweep: size a global bus repeater against wire length.
//!
//! The motivating workload of the paper's introduction: long, wide global
//! interconnect (clock spines, buses) driven by strong buffers. For a set of
//! candidate wire lengths and driver strengths this example runs the
//! effective-capacitance flow for every combination and prints the predicted
//! driver-output delay, slew, the far-end delay, and whether inductance had
//! to be modelled with two ramps — the information a designer needs to pick a
//! repeater size and spacing.
//!
//! Run with: `cargo run --release --example bus_timing_sweep`

use rlc_ceff::far_end::{FarEndOptions, FarEndResponse};
use rlc_ceff::prelude::*;
use rlc_charlib::prelude::*;
use rlc_interconnect::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lengths_mm = [2.0, 3.0, 4.0, 5.0, 6.0];
    let drivers = [50.0, 75.0, 100.0];
    let width_um = 1.6;
    let input_slew = ps(100.0);

    let extractor = EmpiricalExtractor::cmos018();
    let mut library = Library::new(CharacterizationGrid::default());
    // Characterize every driver once up front.
    for &d in &drivers {
        let _ = library.cell(d)?;
    }
    let modeler = DriverOutputModeler::new(ModelingConfig::default());
    let far_opts = FarEndOptions {
        segments: 24,
        time_step: ps(1.0),
        ..FarEndOptions::default()
    };

    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>11} {:>13} {:>9}",
        "len(mm)", "driver", "delay(ps)", "slew(ps)", "far(ps)", "model", "Ceff(fF)"
    );
    for &len in &lengths_mm {
        let line = extractor.extract(&WireGeometry::new(mm(len), um(width_um)));
        for &drv in &drivers {
            let cell = library.cell(drv)?.clone();
            // The bus drives an identical receiver at the far end.
            let c_load = cell.input_capacitance();
            let case = AnalysisCase::new(&cell, &line, c_load, input_slew);
            let model = modeler.model(&case)?;
            let far = FarEndResponse::from_model(&model, &line, c_load, &far_opts)?;
            println!(
                "{:>8.1} {:>7.0}x {:>10.1} {:>12.1} {:>11.1} {:>13} {:>9.1}",
                len,
                drv,
                model.delay() * 1e12,
                model.slew() * 1e12,
                far.delay_from_input * 1e12,
                if model.is_two_ramp() { "two-ramp" } else { "one-ramp" },
                model.ceff1.ceff * 1e15
            );
        }
    }
    println!();
    println!("Two-ramp rows are the nets where ignoring inductance (a plain Ceff ramp)");
    println!("would misreport the driver-output slew by tens of percent.");
    Ok(())
}
