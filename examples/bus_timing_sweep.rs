//! Bus timing sweep: size a global bus repeater against wire length, as one
//! `AnalysisSession` of independent stages.
//!
//! The motivating workload of the paper's introduction: long, wide global
//! interconnect (clock spines, buses) driven by strong buffers. Every
//! (length, driver) combination becomes one `Stage` submitted to a session;
//! the scheduler fans the independent stages across worker threads and
//! `wait_all` returns per-stage reports in submission order, from which the
//! table prints the predicted driver-output delay, slew, the far-end delay,
//! and whether inductance had to be modelled with two ramps — the
//! information a designer needs to pick a repeater size and spacing.
//!
//! Run with: `cargo run --release --example bus_timing_sweep`

use rlc_ceff_suite::{DistributedRlcLoad, EngineConfig, Stage, TimingEngine};

use rlc_ceff_suite::ceff::far_end::FarEndOptions;
use rlc_ceff_suite::charlib::{CharacterizationGrid, Library};
use rlc_ceff_suite::interconnect::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lengths_mm = [2.0, 3.0, 4.0, 5.0, 6.0];
    let drivers = [50.0, 75.0, 100.0];
    let width_um = 1.6;
    let input_slew = ps(100.0);

    let extractor = EmpiricalExtractor::cmos018();
    let mut library = Library::new(CharacterizationGrid::default());
    // Characterize every driver once up front.
    for &d in &drivers {
        let _ = library.cell(d)?;
    }

    // One stage per (length, driver) combination.
    let mut stages = Vec::new();
    let mut loads = Vec::new();
    for &len in &lengths_mm {
        let line = extractor.extract(&WireGeometry::new(mm(len), um(width_um)));
        for &drv in &drivers {
            let cell = library.cell_shared(drv)?;
            // The bus drives an identical receiver at the far end.
            let load = DistributedRlcLoad::new(line, cell.input_capacitance())?;
            loads.push(load);
            stages.push(
                Stage::builder(cell, load)
                    .label(format!("{len:.1}mm/{drv:.0}X"))
                    .input_slew(input_slew)
                    .build()?,
            );
        }
    }

    let engine = TimingEngine::new(EngineConfig::default());
    let mut session = engine.session();
    session.submit_all(stages)?;
    let results = session.wait_all();
    let ok = results.iter().filter(|(_, r)| r.is_ok()).count();
    println!("session: {} stages analyzed, {ok} ok", results.len());
    println!();

    let far_opts = FarEndOptions {
        segments: 24,
        time_step: ps(1.0),
        ..FarEndOptions::default()
    };
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>11} {:>13} {:>9}",
        "len(mm)", "driver", "delay(ps)", "slew(ps)", "far(ps)", "model", "Ceff(fF)"
    );
    for (handle, outcome) in &results {
        let report = match outcome {
            Ok(report) => report,
            Err(error) => {
                eprintln!("stage {} failed: {error}", handle.index());
                continue;
            }
        };
        let index = handle.index();
        let far = report.far_end(&loads[index], &far_opts)?;
        let ceff1 = report
            .analytic
            .as_ref()
            .map(|d| d.ceff1.ceff)
            .unwrap_or(f64::NAN);
        let (len_part, drv_part) = report.label.split_once('/').unwrap_or(("?", "?"));
        println!(
            "{:>8} {:>8} {:>10.1} {:>12.1} {:>11.1} {:>13} {:>9.1}",
            len_part.trim_end_matches("mm"),
            drv_part,
            report.delay * 1e12,
            report.slew * 1e12,
            far.delay_from_input * 1e12,
            if report.used_two_ramp {
                "two-ramp"
            } else {
                "one-ramp"
            },
            ceff1 * 1e15
        );
    }
    println!();
    println!("Two-ramp rows are the nets where ignoring inductance (a plain Ceff ramp)");
    println!("would misreport the driver-output slew by tens of percent.");
    Ok(())
}
